package exp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/meta"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

// Runner regenerates one table or figure.
type Runner func(ctx context.Context, p Params) (*Table, error)

// Registry maps experiment IDs to their runners, in the paper's order.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":        RunTable1,
		"figure3":       RunFigure3,
		"table2":        RunTable2,
		"table3":        RunTable3,
		"table4":        RunTable4,
		"table5":        RunTable5,
		"table6":        RunTable6,
		"training-time": RunTrainingTime,
		"table7":        RunTable7,
		"table8":        RunTable8,
		"table9":        RunTable9,
		"table10":       RunTable10,
		"table11":       RunTable11,
		"table12":       RunTable12,
		"table13":       RunTable13,
		"table14":       RunTable14,
		"table15":       RunTable15,
		"table16":       RunTable16,
		"table17":       RunTable17,
		"table18":       RunTable18,
		"table19":       RunTable19,
		"table20":       RunTable20,
		"table21":       RunTable21,
		"table22":       RunTable22,
		"table23":       RunTable23,
		"table24":       RunTable24,
		"table25":       RunTable25,
		"table26":       RunTable26,
		"figure5":       RunFigure5,
		// Ablations and the paper's stated limitation (beyond its tables).
		"limitation-alltoall": RunLimitationAllToAll,
		"ablation-optimizer":  RunAblationOptimizer,
		"ablation-promptsize": RunAblationPromptSize,
		"ablation-querycount": RunAblationQueryCount,
	}
}

// IDs returns the registered experiment IDs sorted for stable iteration.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(ctx context.Context, id string, p Params) (*Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(ctx, p)
}

// trainDetectorBlocks is trainDetector with an explicit block count
// (the VitLite depth variants of Tables 24/25).
func trainDetectorBlocks(ctx context.Context, w *world, arch nn.Arch, p Params, blocks int) (*bprom.Detector, error) {
	return bprom.Train(ctx, bprom.Config{
		Reserved:      w.reserved,
		ExternalTrain: w.tgtTrain,
		ExternalTest:  w.tgtTest,
		NumClean:      p.ShadowClean,
		NumBackdoor:   p.ShadowBackdoor,
		ShadowArch:    nn.ArchConfig{Arch: arch, Hidden: p.Hidden, Blocks: blocks},
		ShadowTrain:   trainer.Config{Epochs: p.Epochs},
		ShadowAttack:  attack.Config{Kind: attack.BadNets, PoisonRate: 0.20},
		PromptFrac:    p.PromptFrac,
		WhiteBox:      vp.WhiteBoxConfig{Epochs: p.WBEpochs},
		BlackBox:      vp.BlackBoxConfig{Iterations: p.CMAIters},
		QuerySamples:  p.QuerySamples,
		Forest:        meta.TrainConfig{Trees: p.ForestTrees},
		Seed:          p.Seed,
	})
}

// buildBatteryBlocks trains a suspicious battery with an explicit block
// count.
func buildBatteryBlocks(ctx context.Context, w *world, arch nn.Arch, p Params, blocks int, attacks map[attack.Kind]attack.Config) ([]susModel, error) {
	type job struct {
		kind attack.Kind
		cfg  attack.Config
		bd   bool
	}
	var jobs []job
	for s := 0; s < p.SusClean; s++ {
		jobs = append(jobs, job{kind: "clean"})
	}
	for _, kind := range attack.AllKinds() {
		cfg, ok := attacks[kind]
		if !ok {
			continue
		}
		for s := 0; s < p.SusPerAttack; s++ {
			c := cfg
			c.Seed = p.Seed*7919 + uint64(s)
			c.Target = (s * 3) % w.srcTrain.Classes
			jobs = append(jobs, job{kind: kind, cfg: c, bd: true})
		}
	}
	out := make([]susModel, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ds := w.srcTrain
			if jb.bd {
				poisoned, _, err := attack.Poison(w.srcTrain, jb.cfg, rng.New(p.Seed).Split("blk-poison", i))
				if err != nil {
					errs[i] = err
					return
				}
				ds = poisoned
			}
			m, err := nn.Build(nn.ArchConfig{
				Arch: arch, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
				NumClasses: ds.Classes, Hidden: p.Hidden, Blocks: blocks,
			}, rng.New(p.Seed^uint64(4021+i*53)))
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := trainer.Train(ctx, m, ds, trainer.Config{Epochs: p.Epochs}, rng.New(p.Seed).Split("blk-train", i)); err != nil {
				errs[i] = err
				return
			}
			sm := susModel{model: m, backdoor: jb.bd, kind: jb.kind, cfg: jb.cfg}
			sm.acc = trainer.Evaluate(m, w.srcTest, 0)
			if jb.bd {
				if asr, err := attack.ASR(m, w.srcTest, jb.cfg); err == nil {
					sm.asr = asr
				}
			}
			out[i] = sm
		}(i, jb)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: battery job %d: %w", i, err)
		}
	}
	return out, nil
}

// unused import guards (data is referenced by table files only at some
// scales); keep the import meaningful here:
var _ = data.CIFAR10
