package exp

import (
	"context"
	"fmt"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/nn"
)

// bpromOnly runs the BPROM-only detection protocol (used by the appendix
// tables that report BPROM under varied settings).
func bpromOnly(ctx context.Context, p Params, source, external string, arch, susArch nn.Arch, kinds []attack.Kind, worldSeed uint64) (*detectionResult, error) {
	w, err := buildWorld(p, source, external, worldSeed)
	if err != nil {
		return nil, err
	}
	det, err := trainDetector(ctx, w, arch, p, attack.Config{})
	if err != nil {
		return nil, err
	}
	battery, err := buildBattery(ctx, w, susArch, p, attackConfigsFor(source, kinds))
	if err != nil {
		return nil, err
	}
	return runDetection(ctx, det, battery)
}

var appendixKinds = []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan,
	attack.WaNet, attack.Dynamic, attack.AdapBlend, attack.AdapPatch}

// RunTable16 reproduces Table 16: F1 scores of BPROM at DS sizes 10/5/1%.
func RunTable16(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table16",
		Caption: "F1 of BPROM at reserved-set sizes (primary architecture)",
		Header:  append([]string{"variant", "dataset"}, kindsHeader(appendixKinds)...),
	}
	for _, frac := range []float64{0.10, 0.05} {
		pp := p
		pp.ReservedFrac = frac
		for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
			res, err := bpromOnly(ctx, pp, dsName, data.STL10, nn.ArchConvLite, nn.ArchConvLite, appendixKinds, 16)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("bprom (%d%%)", int(frac*100)), dsName}
			for _, k := range appendixKinds {
				row = append(row, f3(res.F1[k]))
			}
			t.AddRow(append(row, f3(avg(res.F1, appendixKinds)))...)
		}
	}
	return t, nil
}

// RunTable17 reproduces Table 17: AUROC on MobileNetLite.
func RunTable17(ctx context.Context, p Params) (*Table, error) {
	return archTable(ctx, p, "table17", "AUROC on MobileNetLite", nn.ArchMobileNetLite, false)
}

// RunTable18 reproduces Table 18: F1 on MobileNetLite.
func RunTable18(ctx context.Context, p Params) (*Table, error) {
	return archTable(ctx, p, "table18", "F1 on MobileNetLite", nn.ArchMobileNetLite, true)
}

func archTable(ctx context.Context, p Params, id, caption string, arch nn.Arch, useF1 bool) (*Table, error) {
	t := &Table{
		ID:      id,
		Caption: caption,
		Header:  append([]string{"dataset"}, kindsHeader(appendixKinds)...),
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		res, err := bpromOnly(ctx, p, dsName, data.STL10, arch, arch, appendixKinds, 17)
		if err != nil {
			return nil, err
		}
		vals := res.AUROC
		if useF1 {
			vals = res.F1
		}
		row := []string{dsName}
		for _, k := range appendixKinds {
			row = append(row, f3(vals[k]))
		}
		t.AddRow(append(row, f3(avg(vals, appendixKinds)))...)
	}
	return t, nil
}

// RunTable19 reproduces Table 19: external dataset DT changed to SVHN with
// DS = GTSRB.
func RunTable19(ctx context.Context, p Params) (*Table, error) {
	return externalDatasetTable(ctx, p, "table19", data.GTSRB)
}

// RunTable20 reproduces Table 20: DT = SVHN with DS = CIFAR-10.
func RunTable20(ctx context.Context, p Params) (*Table, error) {
	return externalDatasetTable(ctx, p, "table20", data.CIFAR10)
}

func externalDatasetTable(ctx context.Context, p Params, id, source string) (*Table, error) {
	t := &Table{
		ID:      id,
		Caption: fmt.Sprintf("DT changed to SVHN, DS = %s", source),
		Header:  append([]string{"metric"}, kindsHeader(appendixKinds)...),
	}
	res, err := bpromOnly(ctx, p, source, data.SVHN, nn.ArchConvLite, nn.ArchConvLite, appendixKinds, 19)
	if err != nil {
		return nil, err
	}
	f1Row, aucRow := []string{"F1"}, []string{"AUROC"}
	for _, k := range appendixKinds {
		f1Row = append(f1Row, f3(res.F1[k]))
		aucRow = append(aucRow, f3(res.AUROC[k]))
	}
	t.AddRow(append(f1Row, f3(avg(res.F1, appendixKinds)))...)
	t.AddRow(append(aucRow, f3(avg(res.AUROC, appendixKinds)))...)
	return t, nil
}

// RunTable21 reproduces Table 21: DS = CIFAR-100 (class-count mismatch with
// the 10-class DT).
func RunTable21(ctx context.Context, p Params) (*Table, error) {
	kinds := []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan, attack.WaNet, attack.AdapBlend, attack.AdapPatch}
	t := &Table{
		ID:      "table21",
		Caption: "DS = CIFAR-100 (class-count mismatch), BPROM AUROC",
		Header:  append([]string{"defense"}, kindsHeader(kinds)...),
	}
	res, err := bpromOnly(ctx, p, data.CIFAR100, data.STL10, nn.ArchConvLite, nn.ArchConvLite, kinds, 21)
	if err != nil {
		return nil, err
	}
	row := []string{fmt.Sprintf("bprom (%d%%)", int(p.ReservedFrac*100))}
	for _, k := range kinds {
		row = append(row, f3(res.AUROC[k]))
	}
	t.AddRow(append(row, f3(avg(res.AUROC, kinds)))...)
	if p.MaxClasses > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("CIFAR-100 classes capped at %d at scale %s", p.MaxClasses, p.Scale))
	}
	return t, nil
}

// RunTable22 reproduces Table 22: feature-based backdoors (Refool, BPP,
// Poison Ink).
func RunTable22(ctx context.Context, p Params) (*Table, error) {
	kinds := []attack.Kind{attack.Refool, attack.BPP, attack.PoisonInk}
	t := &Table{
		ID:      "table22",
		Caption: "Feature-based backdoors on CIFAR-10",
		Header:  []string{"attack", "F1", "AUROC"},
	}
	res, err := bpromOnly(ctx, p, data.CIFAR10, data.STL10, nn.ArchConvLite, nn.ArchConvLite, kinds, 22)
	if err != nil {
		return nil, err
	}
	for _, k := range kinds {
		t.AddRow(string(k), f3(res.F1[k]), f3(res.AUROC[k]))
	}
	return t, nil
}

// RunTable23 reproduces Table 23: AUROC across reserved-set sizes 1/5/10%.
func RunTable23(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table23",
		Caption: "AUROC vs reserved clean dataset size",
		Header:  append([]string{"variant", "dataset"}, kindsHeader(appendixKinds)...),
	}
	fracs := []float64{0.10, 0.05}
	if p.Scale != Tiny {
		// 1% of the synthetic test sets is too few samples to train any
		// shadow model below the small scale.
		fracs = []float64{0.10, 0.05, 0.02}
	}
	for _, frac := range fracs {
		pp := p
		pp.ReservedFrac = frac
		for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
			res, err := bpromOnly(ctx, pp, dsName, data.STL10, nn.ArchConvLite, nn.ArchConvLite, appendixKinds, 23)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("bprom (%g%%)", frac*100), dsName}
			for _, k := range appendixKinds {
				row = append(row, f3(res.AUROC[k]))
			}
			t.AddRow(append(row, f3(avg(res.AUROC, appendixKinds)))...)
		}
	}
	return t, nil
}

// RunTable24 reproduces Table 24: the MobileViT analogue (VitLite, 2 blocks).
func RunTable24(ctx context.Context, p Params) (*Table, error) {
	return vitTable(ctx, p, "table24", "AUROC on VitLite (MobileViT analogue)", 2)
}

// RunTable25 reproduces Table 25: the Swin analogue (VitLite, 3 blocks).
func RunTable25(ctx context.Context, p Params) (*Table, error) {
	return vitTable(ctx, p, "table25", "AUROC on deeper VitLite (Swin analogue)", 3)
}

func vitTable(ctx context.Context, p Params, id, caption string, blocks int) (*Table, error) {
	t := &Table{
		ID:      id,
		Caption: caption,
		Header:  append([]string{"dataset"}, kindsHeader(appendixKinds)...),
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 24)
		if err != nil {
			return nil, err
		}
		det, err := trainDetectorBlocks(ctx, w, nn.ArchVitLite, p, blocks)
		if err != nil {
			return nil, err
		}
		battery, err := buildBatteryBlocks(ctx, w, nn.ArchVitLite, p, blocks, attackConfigsFor(dsName, appendixKinds))
		if err != nil {
			return nil, err
		}
		res, err := runDetection(ctx, det, battery)
		if err != nil {
			return nil, err
		}
		row := []string{dsName}
		for _, k := range appendixKinds {
			row = append(row, f3(res.AUROC[k]))
		}
		t.AddRow(append(row, f3(avg(res.AUROC, appendixKinds)))...)
	}
	return t, nil
}

// RunTable26 reproduces Table 26: the ImageNet-scale analogue.
func RunTable26(ctx context.Context, p Params) (*Table, error) {
	kinds := []attack.Kind{attack.BadNets, attack.Trojan, attack.AdapBlend, attack.AdapPatch}
	t := &Table{
		ID:      "table26",
		Caption: "ImageNet-scale analogue, BPROM AUROC",
		Header:  append([]string{"defense"}, kindsHeader(kinds)...),
	}
	res, err := bpromOnly(ctx, p, data.ImageNet, data.STL10, nn.ArchConvLite, nn.ArchConvLite, kinds, 26)
	if err != nil {
		return nil, err
	}
	row := []string{fmt.Sprintf("bprom (%d%%)", int(p.ReservedFrac*100))}
	for _, k := range kinds {
		row = append(row, f3(res.AUROC[k]))
	}
	t.AddRow(append(row, f3(avg(res.AUROC, kinds)))...)
	if p.MaxClasses > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("ImageNet classes capped at %d at scale %s", p.MaxClasses, p.Scale))
	}
	return t, nil
}
