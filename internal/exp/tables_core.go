package exp

import (
	"context"
	"fmt"
	"time"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/defense"
	"bprom/internal/metric"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/stats"
	"bprom/internal/vp"
)

// table5Attacks are the main-table attacks (paper Table 5 column order).
func table5Attacks() []attack.Kind {
	return []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan, attack.BPP,
		attack.WaNet, attack.Dynamic, attack.AdapBlend, attack.AdapPatch}
}

// attackConfigsFor builds the battery configs for the listed kinds.
func attackConfigsFor(dataset string, kinds []attack.Kind) map[attack.Kind]attack.Config {
	all := attack.DefaultConfigs(dataset)
	out := make(map[attack.Kind]attack.Config, len(kinds))
	for _, k := range kinds {
		out[k] = all[k]
	}
	return out
}

// RunTable1 reproduces Table 1: input-level detectors (TeCo, SCALE-UP)
// evaluated on a backdoored AND a clean model — F1/AUROC collapse on clean.
func RunTable1(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Caption: "Input-level detection collapses on clean models (F1 / AUROC)",
		Header:  []string{"detector", "attack", "backdoored-F1", "backdoored-AUROC", "clean-F1", "clean-AUROC"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 1)
	if err != nil {
		return nil, err
	}
	cleanModel, err := trainModel(ctx, w.srcTrain, nn.ArchConvLite, p, p.Seed^11)
	if err != nil {
		return nil, err
	}
	env := defense.Env{Clean: w.reserved, Seed: p.Seed}
	kinds := []attack.Kind{attack.BadNets, attack.Blend, attack.WaNet}
	cfgs := attackConfigsFor(data.CIFAR10, kinds)
	for _, kind := range kinds {
		cfg := cfgs[kind]
		cfg.Seed = p.Seed
		poisoned, _, err := attack.Poison(w.srcTrain, cfg, rng.New(p.Seed).Split("t1:"+string(kind)))
		if err != nil {
			return nil, err
		}
		infected, err := trainModel(ctx, poisoned, nn.ArchConvLite, p, p.Seed^23)
		if err != nil {
			return nil, err
		}
		benign, triggered, err := inputEvalSets(w, cfg, p)
		if err != nil {
			return nil, err
		}
		for _, d := range []defense.InputLevel{&defense.TeCo{}, &defense.ScaleUp{}} {
			bF1, bAUC, err := inputLevelQuality(ctx, d, infected, benign, triggered, env)
			if err != nil {
				return nil, err
			}
			cF1, cAUC, err := inputLevelQuality(ctx, d, cleanModel, benign, triggered, env)
			if err != nil {
				return nil, err
			}
			t.AddRow(d.Name(), string(kind), f3(bF1), f3(bAUC), f3(cF1), f3(cAUC))
		}
	}
	return t, nil
}

// inputEvalSets draws the benign/triggered evaluation samples.
func inputEvalSets(w *world, cfg attack.Config, p Params) (benign, triggered *data.Dataset, err error) {
	n := p.InputAUROCSamples
	r := rng.New(p.Seed).Split("inputeval")
	benign = w.srcTest.Subset(r.Sample(w.srcTest.Len(), min(n, w.srcTest.Len())))
	trigAll, err := attack.TriggeredTestSet(w.srcTest, cfg)
	if err != nil {
		return nil, nil, err
	}
	triggered = trigAll.Subset(r.Sample(trigAll.Len(), min(n, trigAll.Len())))
	return benign, triggered, nil
}

func inputLevelQuality(ctx context.Context, d defense.InputLevel, m *nn.Model, benign, triggered *data.Dataset, env defense.Env) (f1, auroc float64, err error) {
	sb, err := d.ScoreInputs(ctx, m, benign, env)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", d.Name(), err)
	}
	st, err := d.ScoreInputs(ctx, m, triggered, env)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", d.Name(), err)
	}
	scores := append(append([]float64(nil), sb...), st...)
	labels := make([]bool, len(scores))
	for i := len(sb); i < len(scores); i++ {
		labels[i] = true
	}
	auc, err := metric.AUROC(scores, labels)
	if err != nil {
		return 0, 0, err
	}
	return metric.BestF1(scores, labels), auc, nil
}

// RunTable2 reproduces Table 2: prompted accuracy versus number of target
// classes (class subspace inconsistency worsens with more targets).
func RunTable2(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Caption: "Prompted accuracy vs number of target classes",
		Header:  []string{"dataset", "1 target", "2 targets", "3 targets"},
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 2)
		if err != nil {
			return nil, err
		}
		row := []string{dsName}
		for _, nt := range []int{1, 2, 3} {
			cfg := attack.Config{Kind: attack.BadNets, PoisonRate: 0.20, NumTargets: nt, Seed: p.Seed}
			acc, err := meanPromptedAcc(ctx, w, cfg, p, 2)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(acc))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// meanPromptedAcc trains `reps` poisoned models under cfg and returns their
// mean black-box prompted accuracy on DT.
func meanPromptedAcc(ctx context.Context, w *world, cfg attack.Config, p Params, reps int) (float64, error) {
	total := 0.0
	for s := 0; s < reps; s++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)
		poisoned, _, err := attack.Poison(w.srcTrain, c, rng.New(p.Seed).Split("pacc", s))
		if err != nil {
			return 0, err
		}
		m, err := trainModel(ctx, poisoned, nn.ArchConvLite, p, p.Seed+uint64(100+s*17))
		if err != nil {
			return 0, err
		}
		acc, err := blackBoxPromptedAcc(ctx, m, w, p, uint64(s))
		if err != nil {
			return 0, err
		}
		total += acc
	}
	return total / float64(reps), nil
}

func blackBoxPromptedAcc(ctx context.Context, m *nn.Model, w *world, p Params, seed uint64) (float64, error) {
	prompt, err := vp.NewPrompt(w.srcTrain.Shape, w.tgtTrain.Shape, p.PromptFrac)
	if err != nil {
		return 0, err
	}
	o := oracle.NewModelOracle(m)
	if err := vp.TrainBlackBox(ctx, o, prompt, w.tgtTrain, vp.BlackBoxConfig{Iterations: p.CMAIters}, rng.New(p.Seed).Split("bbp", int(seed))); err != nil {
		return 0, err
	}
	return (&vp.Prompted{Oracle: o, Prompt: prompt}).Accuracy(ctx, w.tgtTest)
}

// RunTable3 reproduces Table 3: prompted accuracy versus trigger size.
func RunTable3(ctx context.Context, p Params) (*Table, error) {
	return sweepPromptedAcc(ctx, p, "table3", "Prompted accuracy vs trigger size",
		triggerSizeSweep, func(cfg *attack.Config, v int) { cfg.TriggerSize = v },
		func(v int) string { return fmt.Sprintf("%dx%d", v, v) })
}

// RunTable4 reproduces Table 4: prompted accuracy versus poison rate.
func RunTable4(ctx context.Context, p Params) (*Table, error) {
	return sweepPromptedAcc(ctx, p, "table4", "Prompted accuracy vs poison rate",
		[]int{5, 10, 20}, func(cfg *attack.Config, v int) { cfg.PoisonRate = float64(v) / 100 },
		func(v int) string { return fmt.Sprintf("%d%%", v) })
}

// triggerSizeSweep: the paper's 4/8/16-on-32 ratios mapped onto the 12-pixel
// synthetic canvas (2, 3, 6 pixels ≈ 1/6, 1/4, 1/2 of the side).
var triggerSizeSweep = []int{2, 3, 6}

func sweepPromptedAcc(ctx context.Context, p Params, id, caption string, values []int,
	apply func(*attack.Config, int), label func(int) string) (*Table, error) {
	t := &Table{
		ID:      id,
		Caption: caption,
		Header:  []string{"setting"},
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		for _, kind := range []attack.Kind{attack.Blend, attack.AdapBlend} {
			t.Header = append(t.Header, fmt.Sprintf("%s/%s", dsName, kind))
		}
	}
	rows := make(map[int][]string, len(values))
	for _, v := range values {
		rows[v] = []string{label(v)}
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 3)
		if err != nil {
			return nil, err
		}
		for _, kind := range []attack.Kind{attack.Blend, attack.AdapBlend} {
			base := attack.DefaultConfigs(dsName)[kind]
			base.PoisonRate = 0.20
			for _, v := range values {
				cfg := base
				apply(&cfg, v)
				acc, err := meanPromptedAcc(ctx, w, cfg, p, 2)
				if err != nil {
					return nil, err
				}
				rows[v] = append(rows[v], f3(acc))
			}
		}
	}
	for _, v := range values {
		t.AddRow(rows[v]...)
	}
	return t, nil
}

// RunTable5 reproduces the main comparison: AUROC of every baseline defense
// plus BPROM on CIFAR-10 and GTSRB over 8 attacks.
func RunTable5(ctx context.Context, p Params) (*Table, error) {
	return defenseComparison(ctx, p, "table5",
		"AUROC of defenses vs BPROM (primary architecture)",
		[]string{data.CIFAR10, data.GTSRB}, table5Attacks(), nn.ArchConvLite, false)
}

// RunTable6 reproduces Table 6: Tiny-ImageNet, two architectures, 7 attacks.
func RunTable6(ctx context.Context, p Params) (*Table, error) {
	kinds := []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan, attack.BPP,
		attack.WaNet, attack.AdapBlend, attack.AdapPatch}
	t := &Table{
		ID:      "table6",
		Caption: "AUROC of defenses on Tiny-ImageNet (class count capped per scale)",
		Header:  append([]string{"defense", "arch"}, kindsHeader(kinds)...),
	}
	for _, arch := range []nn.Arch{nn.ArchConvLite, nn.ArchMobileNetLite} {
		sub, err := defenseComparison(ctx, p, "table6-"+string(arch), "",
			[]string{data.TinyImageNet}, kinds, arch, true)
		if err != nil {
			return nil, err
		}
		for _, row := range sub.Rows {
			// sub rows: defense, dataset, per-kind..., avg → re-tag with arch
			t.AddRow(append([]string{row[0], string(arch)}, row[2:]...)...)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Tiny-ImageNet classes capped at %d at scale %s", p.MaxClasses, p.Scale))
	return t, nil
}

func kindsHeader(kinds []attack.Kind) []string {
	h := make([]string, 0, len(kinds)+1)
	for _, k := range kinds {
		h = append(h, string(k))
	}
	return append(h, "AVG")
}

// defenseComparison runs the shared defense-vs-BPROM AUROC protocol:
// baselines evaluated at their natural granularity per attack, BPROM over
// the suspicious-model battery. reduced drops the slowest baselines (used
// for the large-dataset tables, matching the paper's smaller Table 6 set).
func defenseComparison(ctx context.Context, p Params, id, caption string, datasets []string, kinds []attack.Kind, arch nn.Arch, reduced bool) (*Table, error) {
	t := &Table{
		ID:      id,
		Caption: caption,
		Header:  append([]string{"defense", "dataset"}, kindsHeader(kinds)...),
	}
	inputDefs := []defense.InputLevel{&defense.STRIP{}, &defense.Frequency{}, &defense.SentiNet{}, &defense.TeCo{}}
	datasetDefs := []defense.DatasetLevel{&defense.AC{}, &defense.CT{}, &defense.SS{}, &defense.SCAn{}, &defense.SPECTRE{}}
	if reduced {
		inputDefs = []defense.InputLevel{&defense.STRIP{}, &defense.ScaleUp{}, &defense.CD{}}
		datasetDefs = []defense.DatasetLevel{&defense.AC{}, &defense.SS{}, &defense.SCAn{}, &defense.CT{}}
	}
	for _, dsName := range datasets {
		w, err := buildWorld(p, dsName, data.STL10, 5)
		if err != nil {
			return nil, err
		}
		env := defense.Env{Clean: w.reserved, Seed: p.Seed}
		cfgs := attackConfigsFor(dsName, kinds)

		// One infected model + poisoned set per attack for the baselines.
		type perAttack struct {
			infected          *nn.Model
			poisoned          *data.Dataset
			poisonLabels      []bool
			benign, triggered *data.Dataset
		}
		pa := map[attack.Kind]*perAttack{}
		for _, kind := range kinds {
			cfg := cfgs[kind]
			cfg.Seed = p.Seed
			poisoned, info, err := attack.Poison(w.srcTrain, cfg, rng.New(p.Seed).Split("cmp:"+string(kind)))
			if err != nil {
				return nil, err
			}
			infected, err := trainModel(ctx, poisoned, arch, p, p.Seed^uint64(len(kind)*977))
			if err != nil {
				return nil, err
			}
			benign, triggered, err := inputEvalSets(w, cfg, p)
			if err != nil {
				return nil, err
			}
			labels := make([]bool, poisoned.Len())
			copy(labels, info.IsPoisoned)
			pa[kind] = &perAttack{infected: infected, poisoned: poisoned, poisonLabels: labels, benign: benign, triggered: triggered}
		}
		for _, d := range inputDefs {
			row := []string{d.Name(), dsName}
			sum := 0.0
			for _, kind := range kinds {
				a := pa[kind]
				_, auc, err := inputLevelQuality(ctx, d, a.infected, a.benign, a.triggered, env)
				if err != nil {
					return nil, err
				}
				row = append(row, f3(auc))
				sum += auc
			}
			t.AddRow(append(row, f3(sum/float64(len(kinds))))...)
		}
		for _, d := range datasetDefs {
			row := []string{d.Name(), dsName}
			sum := 0.0
			for _, kind := range kinds {
				a := pa[kind]
				scores, err := d.ScoreTraining(ctx, a.infected, a.poisoned, env)
				if err != nil {
					return nil, err
				}
				auc, err := metric.AUROC(scores, a.poisonLabels)
				if err != nil {
					return nil, err
				}
				row = append(row, f3(auc))
				sum += auc
			}
			t.AddRow(append(row, f3(sum/float64(len(kinds))))...)
		}
		// MM-BD and BPROM are model-level: evaluate over the battery.
		battery, err := buildBattery(ctx, w, arch, p, cfgs)
		if err != nil {
			return nil, err
		}
		mmbdRow, err := modelLevelRow(ctx, &defense.MMBD{}, battery, env, kinds)
		if err != nil {
			return nil, err
		}
		t.AddRow(append([]string{"mm-bd", dsName}, mmbdRow...)...)

		det, err := trainDetector(ctx, w, arch, p, attack.Config{})
		if err != nil {
			return nil, err
		}
		res, err := runDetection(ctx, det, battery)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("bprom (%d%%)", int(p.ReservedFrac*100)), dsName}
		for _, kind := range kinds {
			row = append(row, f3(res.AUROC[kind]))
		}
		t.AddRow(append(row, f3(avg(res.AUROC, kinds)))...)
	}
	return t, nil
}

// modelLevelRow evaluates a model-level baseline over the battery.
func modelLevelRow(ctx context.Context, d defense.ModelLevel, battery []susModel, env defense.Env, kinds []attack.Kind) ([]string, error) {
	scores := make([]float64, len(battery))
	for i := range battery {
		s, err := d.ScoreModel(ctx, battery[i].model, env)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name(), err)
		}
		scores[i] = s
	}
	var cleanScores []float64
	perKind := map[attack.Kind][]float64{}
	for i, b := range battery {
		if !b.backdoor {
			cleanScores = append(cleanScores, scores[i])
		} else {
			perKind[b.kind] = append(perKind[b.kind], scores[i])
		}
	}
	var row []string
	sum := 0.0
	for _, kind := range kinds {
		all := append([]float64(nil), cleanScores...)
		labels := make([]bool, len(cleanScores), len(cleanScores)+len(perKind[kind]))
		for _, s := range perKind[kind] {
			all = append(all, s)
			labels = append(labels, true)
		}
		auc, err := metric.AUROC(all, labels)
		if err != nil {
			return nil, err
		}
		row = append(row, f3(auc))
		sum += auc
	}
	return append(row, f3(sum/float64(len(kinds)))), nil
}

// RunTrainingTime reproduces the §6.2 training-time report: BPROM training
// wall time versus shadow count and architecture.
func RunTrainingTime(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "training-time",
		Caption: "BPROM training time vs shadow-model count",
		Header:  []string{"arch", "shadows", "wall-time"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 6)
	if err != nil {
		return nil, err
	}
	counts := []int{4, 8, 16}
	if p.Scale == Tiny {
		counts = []int{2, 4}
	}
	for _, arch := range []nn.Arch{nn.ArchConvLite, nn.ArchMobileNetLite} {
		for _, n := range counts {
			pp := p
			pp.ShadowClean, pp.ShadowBackdoor = n/2, n/2
			start := time.Now()
			if _, err := trainDetector(ctx, w, arch, pp, attack.Config{}); err != nil {
				return nil, err
			}
			t.AddRow(string(arch), fmt.Sprint(n), time.Since(start).Round(time.Millisecond).String())
		}
	}
	return t, nil
}

// RunFigure3 reproduces Figure 3 numerically: silhouette separation of class
// subspaces for clean/infected source models and their prompted target
// views, plus the PCA coordinates' variance share.
func RunFigure3(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "figure3",
		Caption: "Class-subspace separation (silhouette over penultimate features, top-2 PCA)",
		Header:  []string{"model", "view", "silhouette"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 7)
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultConfigs(data.CIFAR10)[attack.BadNets]
	cfg.PoisonRate = 0.20
	cfg.Seed = p.Seed
	poisoned, _, err := attack.Poison(w.srcTrain, cfg, rng.New(p.Seed).Split("fig3"))
	if err != nil {
		return nil, err
	}
	cleanM, err := trainModel(ctx, w.srcTrain, nn.ArchConvLite, p, p.Seed^77)
	if err != nil {
		return nil, err
	}
	infectedM, err := trainModel(ctx, poisoned, nn.ArchConvLite, p, p.Seed^78)
	if err != nil {
		return nil, err
	}
	for _, mc := range []struct {
		name string
		m    *nn.Model
	}{{"clean", cleanM}, {"infected", infectedM}} {
		// source view: features of source test samples
		sil, err := subspaceSilhouette(mc.m, w.srcTest, nil, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(mc.name, "source", f3(sil))
		// prompted target view
		prompt, err := vp.NewPrompt(w.srcTrain.Shape, w.tgtTrain.Shape, p.PromptFrac)
		if err != nil {
			return nil, err
		}
		if err := vp.TrainWhiteBox(ctx, mc.m, prompt, w.tgtTrain, vp.WhiteBoxConfig{Epochs: p.WBEpochs}, rng.New(p.Seed).Split("fig3p", len(mc.name))); err != nil {
			return nil, err
		}
		sil, err = subspaceSilhouette(mc.m, w.tgtTest, prompt, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(mc.name, "prompted-target", f3(sil))
	}
	t.Notes = append(t.Notes, "expected shape: infected prompted-target silhouette well below clean (Figure 3d's class confusion)")
	return t, nil
}

// subspaceSilhouette computes the silhouette of true-class clusters over the
// model's penultimate features (optionally through a prompt), after top-2
// PCA as in the figure.
func subspaceSilhouette(m *nn.Model, ds *data.Dataset, prompt *vp.Prompt, p Params) (float64, error) {
	n := min(ds.Len(), 200)
	idx := rng.New(p.Seed).Split("sil").Sample(ds.Len(), n)
	var x = func() (feats [][]float64) {
		var batch = func(ids []int) [][]float64 {
			var xt = ds.Subset(ids)
			var in = xt.Tensor()
			if prompt != nil {
				in = prompt.Batch(xt, allIdx(xt.Len()))
			}
			f := m.Features(in)
			d := f.Dim(1)
			out := make([][]float64, xt.Len())
			for i := range out {
				out[i] = append([]float64(nil), f.Data[i*d:(i+1)*d]...)
			}
			return out
		}
		return batch(idx)
	}()
	comps, _, err := stats.PCA(x, 2, rng.New(p.Seed).Split("silpca"))
	if err != nil {
		return 0, err
	}
	proj := stats.Project(x, comps)
	labels := make([]int, n)
	for i, id := range idx {
		labels[i] = ds.Y[id]
	}
	return stats.Silhouette(proj, labels), nil
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RunFigure5 reproduces Figure 5: PCA of meta-features of shadow and
// suspicious models — clean and backdoored models separate.
func RunFigure5(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "figure5",
		Caption: "Meta-feature PCA separation (silhouette of clean vs backdoor model groups)",
		Header:  []string{"population", "silhouette", "models"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 8)
	if err != nil {
		return nil, err
	}
	det, err := trainDetector(ctx, w, nn.ArchConvLite, p, attack.Config{Kind: attack.Trojan, PoisonRate: 0.20})
	if err != nil {
		return nil, err
	}
	var rows [][]float64
	var labels []int
	for _, s := range det.Shadows {
		rows = append(rows, s.Features)
		if s.Backdoor {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	comps, _, err := stats.PCA(rows, 2, rng.New(p.Seed).Split("fig5"))
	if err != nil {
		return nil, err
	}
	proj := stats.Project(rows, comps)
	t.AddRow("shadow models (trojan)", f3(stats.Silhouette(proj, labels)), fmt.Sprint(len(rows)))
	return t, nil
}
