package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/meta"
	"bprom/internal/metric"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

// trainModel builds and trains one classifier on ds.
func trainModel(ctx context.Context, ds *data.Dataset, arch nn.Arch, p Params, seed uint64) (*nn.Model, error) {
	m, err := nn.Build(nn.ArchConfig{
		Arch: arch, C: ds.Shape.C, H: ds.Shape.H, W: ds.Shape.W,
		NumClasses: ds.Classes, Hidden: p.Hidden,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	if _, err := trainer.Train(ctx, m, ds, trainer.Config{Epochs: p.Epochs}, rng.New(seed).Split("train")); err != nil {
		return nil, err
	}
	return m, nil
}

// trainDetector builds a BPROM detector on w with the given arch.
func trainDetector(ctx context.Context, w *world, arch nn.Arch, p Params, shadowAttack attack.Config) (*bprom.Detector, error) {
	if shadowAttack.Kind == "" {
		shadowAttack = attack.Config{Kind: attack.BadNets, PoisonRate: 0.20}
	}
	return bprom.Train(ctx, bprom.Config{
		Reserved:      w.reserved,
		ExternalTrain: w.tgtTrain,
		ExternalTest:  w.tgtTest,
		NumClean:      p.ShadowClean,
		NumBackdoor:   p.ShadowBackdoor,
		ShadowArch:    nn.ArchConfig{Arch: arch, Hidden: p.Hidden},
		ShadowTrain:   trainer.Config{Epochs: p.Epochs},
		ShadowAttack:  shadowAttack,
		PromptFrac:    p.PromptFrac,
		WhiteBox:      vp.WhiteBoxConfig{Epochs: p.WBEpochs},
		BlackBox:      vp.BlackBoxConfig{Iterations: p.CMAIters},
		QuerySamples:  p.QuerySamples,
		Forest:        meta.TrainConfig{Trees: p.ForestTrees},
		Seed:          p.Seed,
	})
}

// susModel is one suspicious model with ground truth.
type susModel struct {
	model    *nn.Model
	backdoor bool
	kind     attack.Kind
	cfg      attack.Config
	acc, asr float64
}

// buildBattery trains the suspicious-model battery: SusClean clean models
// plus SusPerAttack models per attack config. Training runs in parallel.
func buildBattery(ctx context.Context, w *world, arch nn.Arch, p Params, attacks map[attack.Kind]attack.Config) ([]susModel, error) {
	type job struct {
		idx  int
		kind attack.Kind
		cfg  attack.Config
		bd   bool
		seed uint64
	}
	var jobs []job
	for s := 0; s < p.SusClean; s++ {
		jobs = append(jobs, job{kind: "clean", seed: uint64(1000 + s)})
	}
	// Deterministic attack order regardless of map iteration.
	for _, kind := range attack.AllKinds() {
		cfg, ok := attacks[kind]
		if !ok {
			continue
		}
		for s := 0; s < p.SusPerAttack; s++ {
			c := cfg
			c.Seed = p.Seed*7919 + uint64(s)
			if c.Target == 0 {
				c.Target = (s * 3) % w.srcTrain.Classes
			}
			jobs = append(jobs, job{kind: kind, cfg: c, bd: true, seed: uint64(2000 + 37*s)})
		}
	}
	out := make([]susModel, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, jb := range jobs {
		wg.Add(1)
		go func(i int, jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ds := w.srcTrain
			if jb.bd {
				poisoned, _, err := attack.Poison(w.srcTrain, jb.cfg, rng.New(p.Seed).Split("sus-poison", i))
				if err != nil {
					errs[i] = fmt.Errorf("battery %s[%d]: %w", jb.kind, i, err)
					return
				}
				ds = poisoned
			}
			m, err := trainModel(ctx, ds, arch, p, p.Seed^jb.seed^uint64(i*131))
			if err != nil {
				errs[i] = fmt.Errorf("battery %s[%d]: %w", jb.kind, i, err)
				return
			}
			sm := susModel{model: m, backdoor: jb.bd, kind: jb.kind, cfg: jb.cfg}
			sm.acc = trainer.Evaluate(m, w.srcTest, 0)
			if jb.bd {
				if asr, err := attack.ASR(m, w.srcTest, jb.cfg); err == nil {
					sm.asr = asr
				}
			}
			out[i] = sm
		}(i, jb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// detectionResult holds BPROM's per-attack detection quality.
type detectionResult struct {
	AUROC map[attack.Kind]float64
	F1    map[attack.Kind]float64
	// MeanSusPacc maps each kind (and "clean") to the mean black-box
	// prompted accuracy of its suspicious models.
	MeanSusPacc map[attack.Kind]float64
	// MeanASR maps each kind to mean attack success rate.
	MeanASR map[attack.Kind]float64
}

// runDetection inspects every battery model with det and computes
// per-attack AUROC/F1 (each attack's backdoored models versus ALL clean
// models, the paper's evaluation protocol).
func runDetection(ctx context.Context, det *bprom.Detector, battery []susModel) (*detectionResult, error) {
	type scored struct {
		susModel
		score float64
		pacc  float64
	}
	scoredModels := make([]scored, len(battery))
	errs := make([]error, len(battery))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range battery {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			v, err := det.Inspect(ctx, oracle.NewModelOracle(battery[i].model), i)
			if err != nil {
				errs[i] = err
				return
			}
			scoredModels[i] = scored{susModel: battery[i], score: v.Score, pacc: v.PromptedAcc}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: inspect: %w", err)
		}
	}
	res := &detectionResult{
		AUROC:       map[attack.Kind]float64{},
		F1:          map[attack.Kind]float64{},
		MeanSusPacc: map[attack.Kind]float64{},
		MeanASR:     map[attack.Kind]float64{},
	}
	var cleanScores []float64
	perKind := map[attack.Kind][]scored{}
	for _, s := range scoredModels {
		if !s.backdoor {
			cleanScores = append(cleanScores, s.score)
			res.MeanSusPacc["clean"] += s.pacc
			continue
		}
		perKind[s.kind] = append(perKind[s.kind], s)
	}
	if len(cleanScores) > 0 {
		res.MeanSusPacc["clean"] /= float64(len(cleanScores))
	}
	for kind, ss := range perKind {
		scores := append([]float64(nil), cleanScores...)
		labels := make([]bool, len(cleanScores), len(cleanScores)+len(ss))
		for _, s := range ss {
			scores = append(scores, s.score)
			labels = append(labels, true)
			res.MeanSusPacc[kind] += s.pacc
			res.MeanASR[kind] += s.asr
		}
		res.MeanSusPacc[kind] /= float64(len(ss))
		res.MeanASR[kind] /= float64(len(ss))
		auc, err := metric.AUROC(scores, labels)
		if err != nil {
			return nil, fmt.Errorf("exp: AUROC for %s: %w", kind, err)
		}
		res.AUROC[kind] = auc
		res.F1[kind] = metric.BestF1(scores, labels)
	}
	return res, nil
}

// avg returns the mean of the map's values in kind order.
func avg(m map[attack.Kind]float64, kinds []attack.Kind) float64 {
	s, n := 0.0, 0
	for _, k := range kinds {
		if v, ok := m[k]; ok {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
