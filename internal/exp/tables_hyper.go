package exp

import (
	"context"
	"fmt"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/nn"
)

// RunTable7 reproduces Table 7: AUROC versus shadow-model count.
func RunTable7(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table7",
		Caption: "AUROC vs number of shadow models",
		Header:  []string{"shadows", "cifar10/blend", "cifar10/adap-blend", "gtsrb/blend", "gtsrb/adap-blend"},
	}
	counts := [][2]int{{1, 1}, {3, 3}, {5, 5}}
	if p.Scale != Tiny {
		counts = [][2]int{{1, 1}, {5, 5}, {10, 10}}
	}
	kinds := []attack.Kind{attack.Blend, attack.AdapBlend}
	rows := map[int][]string{}
	for _, c := range counts {
		rows[c[0]] = []string{fmt.Sprintf("%d (%d+%d)", c[0]+c[1], c[0], c[1])}
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 10)
		if err != nil {
			return nil, err
		}
		battery, err := buildBattery(ctx, w, nn.ArchConvLite, p, attackConfigsFor(dsName, kinds))
		if err != nil {
			return nil, err
		}
		for _, c := range counts {
			pp := p
			pp.ShadowClean, pp.ShadowBackdoor = c[0], c[1]
			det, err := trainDetector(ctx, w, nn.ArchConvLite, pp, attack.Config{})
			if err != nil {
				return nil, err
			}
			res, err := runDetection(ctx, det, battery)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				rows[c[0]] = append(rows[c[0]], f3(res.AUROC[k]))
			}
		}
	}
	for _, c := range counts {
		t.AddRow(rows[c[0]]...)
	}
	return t, nil
}

// RunTable8 reproduces Table 8: ASR and AUROC across trigger sizes.
func RunTable8(ctx context.Context, p Params) (*Table, error) {
	return sweepASRDetection(ctx, p, "table8", "ASR and AUROC vs trigger size",
		triggerSizeSweep, func(cfg *attack.Config, v int) { cfg.TriggerSize = v },
		func(v int) string { return fmt.Sprintf("%dx%d", v, v) })
}

// RunTable9 reproduces Table 9: ASR and AUROC across poison rates.
func RunTable9(ctx context.Context, p Params) (*Table, error) {
	return sweepASRDetection(ctx, p, "table9", "ASR and AUROC vs poison rate",
		[]int{5, 10, 20}, func(cfg *attack.Config, v int) { cfg.PoisonRate = float64(v) / 100 },
		func(v int) string { return fmt.Sprintf("%d%%", v) })
}

func sweepASRDetection(ctx context.Context, p Params, id, caption string, values []int,
	apply func(*attack.Config, int), label func(int) string) (*Table, error) {
	t := &Table{
		ID:      id,
		Caption: caption,
		Header:  []string{"dataset", "setting", "blend-ASR", "blend-AUROC", "adap-blend-ASR", "adap-blend-AUROC"},
	}
	kinds := []attack.Kind{attack.Blend, attack.AdapBlend}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 11)
		if err != nil {
			return nil, err
		}
		det, err := trainDetector(ctx, w, nn.ArchConvLite, p, attack.Config{})
		if err != nil {
			return nil, err
		}
		for _, v := range values {
			cfgs := map[attack.Kind]attack.Config{}
			for _, k := range kinds {
				cfg := attack.DefaultConfigs(dsName)[k]
				cfg.PoisonRate = 0.20
				apply(&cfg, v)
				cfgs[k] = cfg
			}
			battery, err := buildBattery(ctx, w, nn.ArchConvLite, p, cfgs)
			if err != nil {
				return nil, err
			}
			res, err := runDetection(ctx, det, battery)
			if err != nil {
				return nil, err
			}
			t.AddRow(dsName, label(v),
				f3(res.MeanASR[attack.Blend]), f3(res.AUROC[attack.Blend]),
				f3(res.MeanASR[attack.AdapBlend]), f3(res.AUROC[attack.AdapBlend]))
		}
	}
	return t, nil
}

// RunTable10 reproduces Table 10: suspicious and shadow architectures differ
// (suspicious MobileNetLite, shadows primary arch).
func RunTable10(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table10",
		Caption: "Cross-architecture detection (suspicious MobileNetLite, shadows ConvLite)",
		Header:  []string{"metric", "wanet", "adap-blend", "adap-patch", "AVG"},
	}
	kinds := []attack.Kind{attack.WaNet, attack.AdapBlend, attack.AdapPatch}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 12)
	if err != nil {
		return nil, err
	}
	det, err := trainDetector(ctx, w, nn.ArchConvLite, p, attack.Config{})
	if err != nil {
		return nil, err
	}
	battery, err := buildBattery(ctx, w, nn.ArchMobileNetLite, p, attackConfigsFor(data.CIFAR10, kinds))
	if err != nil {
		return nil, err
	}
	res, err := runDetection(ctx, det, battery)
	if err != nil {
		return nil, err
	}
	f1Row, aucRow := []string{"F1"}, []string{"AUROC"}
	for _, k := range kinds {
		f1Row = append(f1Row, f3(res.F1[k]))
		aucRow = append(aucRow, f3(res.AUROC[k]))
	}
	t.AddRow(append(f1Row, f3(avg(res.F1, kinds)))...)
	t.AddRow(append(aucRow, f3(avg(res.AUROC, kinds)))...)
	return t, nil
}

// RunTable11 reproduces Table 11: adaptive attacks with very low poison
// rates (BadNets on CIFAR-10).
func RunTable11(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table11",
		Caption: "Low-poison-rate adaptive attacks (BadNets, CIFAR-10)",
		Header:  []string{"poison-rate", "AUROC", "ASR"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 13)
	if err != nil {
		return nil, err
	}
	det, err := trainDetector(ctx, w, nn.ArchConvLite, p, attack.Config{})
	if err != nil {
		return nil, err
	}
	// The paper sweeps 0.2%..10% of 50k samples; scaled to the synthetic
	// set size the same absolute poisoned-sample regime is 1%..20%.
	for _, rate := range []float64{0.01, 0.02, 0.05, 0.10, 0.20} {
		cfg := attack.Config{Kind: attack.BadNets, PoisonRate: rate}
		battery, err := buildBattery(ctx, w, nn.ArchConvLite, p, map[attack.Kind]attack.Config{attack.BadNets: cfg})
		if err != nil {
			return nil, err
		}
		res, err := runDetection(ctx, det, battery)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100), f3(res.AUROC[attack.BadNets]), f3(res.MeanASR[attack.BadNets]))
	}
	t.Notes = append(t.Notes, "paper rates 0.2-10% of 50k CIFAR map to 1-20% of the small synthetic sets (absolute poisoned-sample counts)")
	return t, nil
}

// RunTable12 reproduces Table 12: clean-label attacks SIG and LC.
func RunTable12(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table12",
		Caption: "Clean-label adaptive attacks (AUROC)",
		Header:  []string{"dataset", "sig", "lc"},
	}
	kinds := []attack.Kind{attack.SIG, attack.LC}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 14)
		if err != nil {
			return nil, err
		}
		det, err := trainDetector(ctx, w, nn.ArchConvLite, p, attack.Config{})
		if err != nil {
			return nil, err
		}
		battery, err := buildBattery(ctx, w, nn.ArchConvLite, p, attackConfigsFor(dsName, kinds))
		if err != nil {
			return nil, err
		}
		res, err := runDetection(ctx, det, battery)
		if err != nil {
			return nil, err
		}
		t.AddRow(dsName, f3(res.AUROC[attack.SIG]), f3(res.AUROC[attack.LC]))
	}
	return t, nil
}

// RunTable13 reproduces Table 13: attack configurations — the paper's
// published rates side by side with the scaled rates this reproduction uses.
func RunTable13(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "table13",
		Caption: "Attack configurations: paper rates vs scaled reproduction rates",
		Header:  []string{"attack", "dataset", "paper-poison", "paper-cover", "ours-poison", "ours-cover"},
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		paper := attack.PaperConfigs(dsName)
		ours := attack.DefaultConfigs(dsName)
		for _, kind := range []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan, attack.WaNet, attack.Dynamic, attack.AdapBlend, attack.AdapPatch} {
			pc := paper[kind]
			oc := ours[kind]
			cover := "-"
			if oc.CoverRate > 0 {
				cover = fmt.Sprintf("%.1f%%", oc.CoverRate*100)
			}
			pcover := pc.CoverRate
			if pcover == "" {
				pcover = "-"
			}
			t.AddRow(string(kind), dsName, pc.PoisonRate, pcover, fmt.Sprintf("%.1f%%", oc.PoisonRate*100), cover)
		}
	}
	t.Notes = append(t.Notes, "rates scaled so absolute poisoned-sample counts land in the >98% ASR regime on the small synthetic sets")
	return t, nil
}

// RunTable14 and RunTable15 reproduce Tables 14/15: clean accuracy and ASR
// of infected models per architecture.
func RunTable14(ctx context.Context, p Params) (*Table, error) {
	return accASRTable(ctx, p, "table14", nn.ArchConvLite)
}

// RunTable15 is the MobileNetLite variant of Table 14.
func RunTable15(ctx context.Context, p Params) (*Table, error) {
	return accASRTable(ctx, p, "table15", nn.ArchMobileNetLite)
}

func accASRTable(ctx context.Context, p Params, id string, arch nn.Arch) (*Table, error) {
	kinds := []attack.Kind{attack.BadNets, attack.Blend, attack.Trojan, attack.WaNet, attack.Dynamic, attack.AdapBlend, attack.AdapPatch}
	t := &Table{
		ID:      id,
		Caption: fmt.Sprintf("Clean accuracy (ACC) and attack success rate (ASR) on %s", arch),
		Header:  append([]string{"dataset", "metric"}, append(kindsHeader(kinds)[:len(kinds)], "clean")...),
	}
	for _, dsName := range []string{data.CIFAR10, data.GTSRB} {
		w, err := buildWorld(p, dsName, data.STL10, 15)
		if err != nil {
			return nil, err
		}
		battery, err := buildBattery(ctx, w, arch, p, attackConfigsFor(dsName, kinds))
		if err != nil {
			return nil, err
		}
		accRow := []string{dsName, "ACC"}
		asrRow := []string{dsName, "ASR"}
		perKindAcc := map[attack.Kind][]float64{}
		perKindASR := map[attack.Kind][]float64{}
		var cleanAcc []float64
		for _, b := range battery {
			if b.backdoor {
				perKindAcc[b.kind] = append(perKindAcc[b.kind], b.acc)
				perKindASR[b.kind] = append(perKindASR[b.kind], b.asr)
			} else {
				cleanAcc = append(cleanAcc, b.acc)
			}
		}
		for _, k := range kinds {
			accRow = append(accRow, f3(meanOf(perKindAcc[k])))
			asrRow = append(asrRow, f3(meanOf(perKindASR[k])))
		}
		accRow = append(accRow, f3(meanOf(cleanAcc)))
		asrRow = append(asrRow, "-")
		t.AddRow(accRow...)
		t.AddRow(asrRow...)
	}
	return t, nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
