package exp

import (
	"context"
	"fmt"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/vp"
)

// The ablations below cover the design choices DESIGN.md calls out beyond
// the paper's own tables: the black-box optimizer, the prompt geometry, the
// query-set size, and the paper's stated limitation (all-to-all backdoors).

// RunLimitationAllToAll reproduces the conclusion section's limitation:
// BPROM detects all-to-one backdoors but struggles with all-to-all ones,
// whose feature-space distortion the attacker controls.
func RunLimitationAllToAll(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "limitation-alltoall",
		Caption: "All-to-one vs all-to-all backdoors (BadNets, CIFAR-10)",
		Header:  []string{"backdoor mapping", "AUROC", "mean ASR"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 30)
	if err != nil {
		return nil, err
	}
	det, err := trainDetector(ctx, w, nn.ArchConvLite, p, attack.Config{})
	if err != nil {
		return nil, err
	}
	for _, allToAll := range []bool{false, true} {
		cfg := attack.Config{Kind: attack.BadNets, PoisonRate: 0.20, AllToAll: allToAll}
		battery, err := buildBattery(ctx, w, nn.ArchConvLite, p, map[attack.Kind]attack.Config{attack.BadNets: cfg})
		if err != nil {
			return nil, err
		}
		res, err := runDetection(ctx, det, battery)
		if err != nil {
			return nil, err
		}
		name := "all-to-one"
		if allToAll {
			name = "all-to-all"
		}
		t.AddRow(name, f3(res.AUROC[attack.BadNets]), f3(res.MeanASR[attack.BadNets]))
	}
	t.Notes = append(t.Notes, "expected shape: all-to-all AUROC at or below all-to-one (the paper's stated limitation)")
	return t, nil
}

// RunAblationOptimizer compares the black-box prompt optimizers: CMA-ES
// (the paper's choice) versus SPSA on the same query budget.
func RunAblationOptimizer(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "ablation-optimizer",
		Caption: "Black-box prompt optimizer: prompted accuracy on a clean model",
		Header:  []string{"optimizer", "prompted accuracy"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 31)
	if err != nil {
		return nil, err
	}
	m, err := trainModel(ctx, w.srcTrain, nn.ArchConvLite, p, p.Seed^31)
	if err != nil {
		return nil, err
	}
	for _, useSPSA := range []bool{false, true} {
		prompt, err := vp.NewPrompt(w.srcTrain.Shape, w.tgtTrain.Shape, p.PromptFrac)
		if err != nil {
			return nil, err
		}
		o := oracle.NewModelOracle(m)
		cfg := vp.BlackBoxConfig{Iterations: p.CMAIters, UseSPSA: useSPSA}
		if err := vp.TrainBlackBox(ctx, o, prompt, w.tgtTrain, cfg, rng.New(p.Seed).Split("abl-opt", boolToInt(useSPSA))); err != nil {
			return nil, err
		}
		acc, err := (&vp.Prompted{Oracle: o, Prompt: prompt}).Accuracy(ctx, w.tgtTest)
		if err != nil {
			return nil, err
		}
		name := "cma-es (paper)"
		if useSPSA {
			name = "spsa"
		}
		t.AddRow(name, f3(acc))
	}
	return t, nil
}

// RunAblationPromptSize sweeps the prompt's inner-window fraction: more
// visible image content raises prompted accuracy but shrinks θ.
func RunAblationPromptSize(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "ablation-promptsize",
		Caption: "Prompt inner-window fraction vs prompted accuracy (clean model)",
		Header:  []string{"inner fraction", "theta dims", "prompted accuracy"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 32)
	if err != nil {
		return nil, err
	}
	m, err := trainModel(ctx, w.srcTrain, nn.ArchConvLite, p, p.Seed^32)
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.58, 0.67, 0.75, 0.83} {
		prompt, err := vp.NewPrompt(w.srcTrain.Shape, w.tgtTrain.Shape, frac)
		if err != nil {
			return nil, err
		}
		o := oracle.NewModelOracle(m)
		if err := vp.TrainBlackBox(ctx, o, prompt, w.tgtTrain, vp.BlackBoxConfig{Iterations: p.CMAIters}, rng.New(p.Seed).Split("abl-size", int(frac*100))); err != nil {
			return nil, err
		}
		acc, err := (&vp.Prompted{Oracle: o, Prompt: prompt}).Accuracy(ctx, w.tgtTest)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), fmt.Sprint(prompt.Dim()), f3(acc))
	}
	t.Notes = append(t.Notes, "expected shape: accuracy rises with the visible-content fraction")
	return t, nil
}

// RunAblationQueryCount sweeps q = |DQ|: more query samples give the
// meta-classifier a richer signature.
func RunAblationQueryCount(ctx context.Context, p Params) (*Table, error) {
	t := &Table{
		ID:      "ablation-querycount",
		Caption: "Meta-feature query count q vs detection AUROC (BadNets)",
		Header:  []string{"q", "AUROC"},
	}
	w, err := buildWorld(p, data.CIFAR10, data.STL10, 33)
	if err != nil {
		return nil, err
	}
	cfg := attack.Config{Kind: attack.BadNets, PoisonRate: 0.20}
	battery, err := buildBattery(ctx, w, nn.ArchConvLite, p, map[attack.Kind]attack.Config{attack.BadNets: cfg})
	if err != nil {
		return nil, err
	}
	for _, q := range []int{5, 15, 30} {
		pp := p
		pp.QuerySamples = q
		det, err := trainDetector(ctx, w, nn.ArchConvLite, pp, attack.Config{})
		if err != nil {
			return nil, err
		}
		res, err := runDetection(ctx, det, battery)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(q), f3(res.AUROC[attack.BadNets]))
	}
	return t, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
