package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"bprom/internal/attack"
	"bprom/internal/data"
)

func TestParamsForScales(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Full} {
		p := ParamsFor(s)
		if p.Scale != s {
			t.Fatalf("ParamsFor(%s).Scale = %s", s, p.Scale)
		}
		if p.SrcTrain <= 0 || p.Epochs <= 0 || p.ShadowClean <= 0 {
			t.Fatalf("ParamsFor(%s) has zero fields: %+v", s, p)
		}
	}
	tiny, full := ParamsFor(Tiny), ParamsFor(Full)
	if tiny.SrcTrain >= full.SrcTrain || tiny.Epochs >= full.Epochs {
		t.Fatal("tiny must be smaller than full")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Caption: "demo",
		Header: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("render missing content:\n%s", out)
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" || lines[2] != "333,4" {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestRegistryCoversPaperExperiments(t *testing.T) {
	reg := Registry()
	// Every table 1..26 plus both figures and the training-time report.
	for i := 1; i <= 26; i++ {
		id := "table" + strconv.Itoa(i)
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	for _, id := range []string{"figure3", "figure5", "training-time"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "table999", ParamsFor(Tiny)); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestBuildWorldCapsClasses(t *testing.T) {
	p := ParamsFor(Tiny)
	w, err := buildWorld(p, data.TinyImageNet, data.STL10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.srcTrain.Classes != p.MaxClasses {
		t.Fatalf("Tiny-ImageNet classes %d, want cap %d", w.srcTrain.Classes, p.MaxClasses)
	}
	if _, err := buildWorld(p, "bogus", data.STL10, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestTable13Static(t *testing.T) {
	// table13 is data-free and fast: a full correctness check.
	tab, err := Run(context.Background(), "table13", ParamsFor(Tiny))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 14 { // 7 attacks x 2 datasets
		t.Fatalf("table13 has %d rows, want 14", len(tab.Rows))
	}
}

// TestTable2EndToEnd runs one real (tiny) experiment end to end: it verifies
// the harness plumbing and the headline phenomenon's direction.
func TestTable2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs model training")
	}
	p := ParamsFor(Tiny)
	p.SusPerAttack = 1
	tab, err := Run(context.Background(), "table2", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("table2 rows: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Fatalf("table2 row width: %v", row)
		}
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0 || v > 1 {
				t.Fatalf("table2 cell %q not a valid accuracy", cell)
			}
		}
	}
}

func TestAttackConfigsForCoversKinds(t *testing.T) {
	kinds := table5Attacks()
	cfgs := attackConfigsFor(data.CIFAR10, kinds)
	if len(cfgs) != len(kinds) {
		t.Fatalf("%d configs for %d kinds", len(cfgs), len(kinds))
	}
	for _, k := range kinds {
		if cfgs[k].Kind != k {
			t.Fatalf("config for %s has kind %s", k, cfgs[k].Kind)
		}
	}
}

func TestAvgHelper(t *testing.T) {
	m := map[attack.Kind]float64{attack.BadNets: 1, attack.Blend: 0}
	if got := avg(m, []attack.Kind{attack.BadNets, attack.Blend}); got != 0.5 {
		t.Fatalf("avg = %v", got)
	}
	if got := avg(m, []attack.Kind{attack.Trojan}); got != 0 {
		t.Fatalf("avg over missing kinds = %v", got)
	}
}
