package data

import (
	"fmt"
	"math"

	"bprom/internal/rng"
)

// Spec describes a synthetic dataset family. Presets mirror the paper's
// datasets: class counts are faithful; resolutions are scaled down so
// CPU-only training completes (see DESIGN.md).
type Spec struct {
	Name    string
	Shape   Shape
	Classes int
	// Waves is the number of sinusoidal components per class template.
	Waves int
	// NoiseStd is the per-pixel jitter applied to each sample.
	NoiseStd float64
	// MaxShift is the maximum per-sample translation in pixels.
	MaxShift int
	// BrightnessJitter is the max absolute per-sample brightness offset.
	BrightnessJitter float64
}

// Preset names accepted by SpecFor.
const (
	CIFAR10      = "cifar10"
	GTSRB        = "gtsrb"
	STL10        = "stl10"
	SVHN         = "svhn"
	CIFAR100     = "cifar100"
	TinyImageNet = "tinyimagenet"
	ImageNet     = "imagenet"
)

// SpecFor returns the preset spec for one of the paper's datasets. The
// boolean reports whether the name was recognized.
func SpecFor(name string) (Spec, bool) {
	base := Spec{Waves: 3, NoiseStd: 0.08, MaxShift: 1, BrightnessJitter: 0.06}
	switch name {
	case CIFAR10:
		base.Name, base.Shape, base.Classes = CIFAR10, Shape{C: 3, H: 12, W: 12}, 10
	case GTSRB:
		// Traffic signs: more classes, slightly crisper templates.
		base.Name, base.Shape, base.Classes = GTSRB, Shape{C: 3, H: 12, W: 12}, 43
		base.NoiseStd = 0.06
	case STL10:
		// STL-10 images are larger than CIFAR's; keep that relationship.
		base.Name, base.Shape, base.Classes = STL10, Shape{C: 3, H: 16, W: 16}, 10
	case SVHN:
		base.Name, base.Shape, base.Classes = SVHN, Shape{C: 3, H: 12, W: 12}, 10
		base.NoiseStd = 0.10 // street-number crops are noisier
	case CIFAR100:
		base.Name, base.Shape, base.Classes = CIFAR100, Shape{C: 3, H: 12, W: 12}, 100
	case TinyImageNet:
		base.Name, base.Shape, base.Classes = TinyImageNet, Shape{C: 3, H: 14, W: 14}, 200
	case ImageNet:
		// 1000 classes is kept: what matters for Table 26's shape is a large
		// label space; per-class sample counts shrink instead.
		base.Name, base.Shape, base.Classes = ImageNet, Shape{C: 3, H: 14, W: 14}, 1000
	default:
		return Spec{}, false
	}
	return base, true
}

// MustSpec returns the preset or panics; for tests and examples with
// hardcoded names.
func MustSpec(name string) Spec {
	s, ok := SpecFor(name)
	if !ok {
		panic(fmt.Sprintf("data: unknown dataset preset %q", name))
	}
	return s
}

// classTemplate holds the generative parameters of one class.
type classTemplate struct {
	base []float64 // C*H*W template pixels in [0,1]
}

// Generator produces samples for a Spec. The same (spec, seed) pair always
// yields the same class templates, so "CIFAR-10" means the same distribution
// everywhere in the repository — the defender's reserved split and the
// attacker's training data genuinely come from one distribution.
type Generator struct {
	Spec      Spec
	templates []classTemplate
	seed      uint64
}

// NewGenerator builds the per-class templates for the spec.
func NewGenerator(spec Spec, seed uint64) *Generator {
	if !spec.Shape.Valid() || spec.Classes < 2 {
		panic(fmt.Sprintf("data: invalid spec %+v", spec))
	}
	g := &Generator{Spec: spec, seed: seed}
	g.templates = make([]classTemplate, spec.Classes)
	root := rng.New(seed).Split("templates:" + spec.Name)
	for c := range g.templates {
		g.templates[c] = makeTemplate(spec, c, root.Split("class", c))
	}
	return g
}

// universeSeed fixes the shared "visual world" from which every dataset's
// class templates derive. The paper's source/target pairs (CIFAR-10 and
// STL-10) share 9 of 10 semantic classes, which is what makes the identity
// output mapping of VP meaningful; we reproduce that by keying the dominant
// sinusoid components of class c on c alone (universe) and letting each
// dataset distort them (amplitude/phase jitter, an extra dataset-specific
// wave, its own blob). Class j therefore "means" the same visual concept
// across datasets while every dataset remains a distinct distribution.
const universeSeed = 0xB9207

type wave struct{ fx, fy, phase, amp float64 }

// makeTemplate composes class-keyed universal sinusoids plus dataset-keyed
// distortion into a class template per channel, normalized into [0.1, 0.9]
// so jitter rarely clips.
func makeTemplate(spec Spec, class int, r *rng.RNG) classTemplate {
	sh := spec.Shape
	base := make([]float64, sh.Dim())
	for c := 0; c < sh.C; c++ {
		off := c * sh.H * sh.W
		// Universal components: same for class `class`, channel c in every
		// dataset. Frequencies are expressed per unit of normalized image
		// coordinates so templates survive resolution changes (VP resizes
		// across datasets).
		ur := rng.New(universeSeed).Split("class", class, c)
		waves := make([]wave, spec.Waves+1)
		for i := 0; i < spec.Waves; i++ {
			waves[i] = wave{
				fx:    (ur.Float64()*2 + 0.5) * math.Pi,
				fy:    (ur.Float64()*2 + 0.5) * math.Pi,
				phase: ur.Float64() * 2 * math.Pi,
				amp:   0.4 + 0.6*ur.Float64(),
			}
		}
		// One high-frequency texture wave per class: natural images carry
		// fine-grained texture that excites localized (trigger-like) feature
		// detectors; without it, poisoned models never confuse prompted
		// content with triggers and the paper's effect cannot form.
		waves[spec.Waves] = wave{
			fx:    (ur.Float64()*6 + 6) * math.Pi,
			fy:    (ur.Float64()*6 + 6) * math.Pi,
			phase: ur.Float64() * 2 * math.Pi,
			amp:   0.5 + 0.4*ur.Float64(),
		}
		// Dataset distortion: jitter the universal waves and add one wave
		// plus one blob of the dataset's own.
		for i := range waves {
			waves[i].amp *= 0.7 + 0.6*r.Float64()
			waves[i].phase += (r.Float64() - 0.5) * 0.6
		}
		own := wave{
			fx:    (r.Float64()*2 + 0.5) * math.Pi,
			fy:    (r.Float64()*2 + 0.5) * math.Pi,
			phase: r.Float64() * 2 * math.Pi,
			amp:   0.25 + 0.25*r.Float64(),
		}
		bx := r.Float64()
		by := r.Float64()
		sigma := 0.08 + 0.17*r.Float64()
		blobAmp := 0.3 + 0.5*r.Float64()
		lo, hi := math.Inf(1), math.Inf(-1)
		for y := 0; y < sh.H; y++ {
			ny := float64(y) / float64(sh.H-1)
			for x := 0; x < sh.W; x++ {
				nx := float64(x) / float64(sh.W-1)
				v := 0.0
				for _, w := range waves {
					v += w.amp * math.Sin(w.fx*nx+w.fy*ny+w.phase)
				}
				v += own.amp * math.Sin(own.fx*nx+own.fy*ny+own.phase)
				dx, dy := nx-bx, ny-by
				v += blobAmp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
				base[off+y*sh.W+x] = v
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		// normalize this channel into [0.1, 0.9]
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for i := off; i < off+sh.H*sh.W; i++ {
			base[i] = 0.1 + 0.8*(base[i]-lo)/span
		}
	}
	return classTemplate{base: base}
}

// SampleInto writes one jittered sample of class c into dst using r.
func (g *Generator) SampleInto(dst []float64, c int, r *rng.RNG) {
	spec := g.Spec
	sh := spec.Shape
	tpl := g.templates[c].base
	shiftX, shiftY := 0, 0
	if spec.MaxShift > 0 {
		shiftX = r.Intn(2*spec.MaxShift+1) - spec.MaxShift
		shiftY = r.Intn(2*spec.MaxShift+1) - spec.MaxShift
	}
	bright := 0.0
	if spec.BrightnessJitter > 0 {
		bright = (2*r.Float64() - 1) * spec.BrightnessJitter
	}
	for ch := 0; ch < sh.C; ch++ {
		off := ch * sh.H * sh.W
		for y := 0; y < sh.H; y++ {
			sy := clampInt(y+shiftY, 0, sh.H-1)
			for x := 0; x < sh.W; x++ {
				sx := clampInt(x+shiftX, 0, sh.W-1)
				v := tpl[off+sy*sh.W+sx] + bright + spec.NoiseStd*r.NormFloat64()
				dst[off+y*sh.W+x] = clampF(v, 0, 1)
			}
		}
	}
}

// Generate produces a dataset with perClass samples per class. Labels cycle
// 0..Classes-1 so every class is represented even for tiny sizes.
func (g *Generator) Generate(perClass int, r *rng.RNG) *Dataset {
	spec := g.Spec
	n := perClass * spec.Classes
	d := &Dataset{
		Name:    spec.Name,
		Shape:   spec.Shape,
		Classes: spec.Classes,
		X:       make([]float64, n*spec.Shape.Dim()),
		Y:       make([]int, n),
	}
	w := spec.Shape.Dim()
	i := 0
	for c := 0; c < spec.Classes; c++ {
		cr := r.Split("gen", c)
		for s := 0; s < perClass; s++ {
			g.SampleInto(d.X[i*w:(i+1)*w], c, cr)
			d.Y[i] = c
			i++
		}
	}
	// Shuffle so batching never sees class-sorted order.
	perm := r.Perm(n)
	shuffled := d.Subset(perm)
	return shuffled
}

// GenerateSplit is the common "train/test from one distribution" helper:
// it generates perClassTrain+perClassTest samples per class and returns
// disjoint train and test datasets.
func (g *Generator) GenerateSplit(perClassTrain, perClassTest int, r *rng.RNG) (train, test *Dataset) {
	train = g.Generate(perClassTrain, r.Split("train"))
	test = g.Generate(perClassTest, r.Split("test"))
	return train, test
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
