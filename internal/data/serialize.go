package data

import (
	"fmt"
	"io"

	"bprom/internal/binio"
)

// Binary dataset section of the detector artifact. A detector is only as
// portable as its external dataset DT: prompting and the DQ query samples
// must be bit-identical across processes for verdicts to reproduce, so the
// artifact embeds the exact pixel and label data rather than a generator
// recipe. The enclosing artifact (internal/bprom/serialize.go) carries
// magic and version.

// Save writes the dataset section to w.
func (d *Dataset) Save(w io.Writer) error {
	if err := binio.WriteString(w, d.Name); err != nil {
		return err
	}
	for _, v := range []int{d.Shape.C, d.Shape.H, d.Shape.W, d.Classes} {
		if err := binio.WriteU32(w, uint32(v)); err != nil {
			return err
		}
	}
	if err := binio.WriteFloats(w, d.X); err != nil {
		return err
	}
	return binio.WriteInts(w, d.Y)
}

// LoadDataset reads a dataset section previously written by Save and
// validates its internal consistency.
func LoadDataset(r io.Reader) (*Dataset, error) {
	name, err := binio.ReadString(r)
	if err != nil {
		return nil, err
	}
	var vals [4]uint32
	for i := range vals {
		v, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	d := &Dataset{
		Name:    name,
		Shape:   Shape{C: int(vals[0]), H: int(vals[1]), W: int(vals[2])},
		Classes: int(vals[3]),
	}
	if !d.Shape.Valid() || d.Classes < 1 {
		return nil, fmt.Errorf("data: invalid dataset geometry %+v classes=%d", d.Shape, d.Classes)
	}
	if d.X, err = binio.ReadFloats(r); err != nil {
		return nil, err
	}
	if d.Y, err = binio.ReadInts(r); err != nil {
		return nil, err
	}
	if len(d.X) != len(d.Y)*d.Shape.Dim() {
		return nil, fmt.Errorf("data: %d pixel values for %d samples of dim %d", len(d.X), len(d.Y), d.Shape.Dim())
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return nil, fmt.Errorf("data: sample %d has label %d outside %d classes", i, y, d.Classes)
		}
	}
	return d, nil
}
