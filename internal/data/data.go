// Package data provides the Dataset container and the deterministic
// synthetic image datasets substituting for CIFAR-10, GTSRB, STL-10, SVHN,
// CIFAR-100, Tiny-ImageNet and ImageNet (see DESIGN.md "Substitutions").
//
// Each synthetic dataset keeps its real counterpart's class count and an
// image-like generative structure: every class owns a template composed of
// low-frequency 2-D sinusoids plus a soft blob, and samples are the template
// under per-sample jitter (additive noise, brightness shift, small
// translation). Classes therefore form distinct clusters whose subspace
// geometry a trained network carves up — exactly the structure that the
// paper's class-subspace-inconsistency argument relies on — while low
// inter-class frequency content keeps defenses like the DCT-based Frequency
// detector meaningful (patch triggers add high-frequency energy).
package data

import (
	"fmt"
	"math"

	"bprom/internal/rng"
	"bprom/internal/tensor"
)

// Shape describes per-sample image geometry.
type Shape struct {
	C, H, W int
}

// Dim returns the flattened per-sample width.
func (s Shape) Dim() int { return s.C * s.H * s.W }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.C > 0 && s.H > 0 && s.W > 0 }

// Dataset is a labelled collection of flattened images with values in [0,1].
// X is sample-major: sample i occupies X[i*Shape.Dim() : (i+1)*Shape.Dim()].
type Dataset struct {
	Name    string
	Shape   Shape
	Classes int
	X       []float64
	Y       []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Sample returns a view (not a copy) of sample i's pixels.
func (d *Dataset) Sample(i int) []float64 {
	w := d.Shape.Dim()
	return d.X[i*w : (i+1)*w]
}

// SetSample overwrites sample i's pixels.
func (d *Dataset) SetSample(i int, pix []float64) {
	copy(d.Sample(i), pix)
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name, Shape: d.Shape, Classes: d.Classes}
	c.X = append([]float64(nil), d.X...)
	c.Y = append([]int(nil), d.Y...)
	return c
}

// Subset returns a new dataset containing the given sample indices (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	w := d.Shape.Dim()
	s := &Dataset{
		Name:    d.Name,
		Shape:   d.Shape,
		Classes: d.Classes,
		X:       make([]float64, 0, len(idx)*w),
		Y:       make([]int, 0, len(idx)),
	}
	for _, i := range idx {
		s.X = append(s.X, d.Sample(i)...)
		s.Y = append(s.Y, d.Y[i])
	}
	return s
}

// Append adds all samples of o (which must share the shape) to d.
func (d *Dataset) Append(o *Dataset) error {
	if d.Shape != o.Shape {
		return fmt.Errorf("data: cannot append %v-shaped samples to %v dataset", o.Shape, d.Shape)
	}
	d.X = append(d.X, o.X...)
	d.Y = append(d.Y, o.Y...)
	return nil
}

// Add appends one sample.
func (d *Dataset) Add(pix []float64, label int) {
	d.X = append(d.X, pix...)
	d.Y = append(d.Y, label)
}

// Batch materializes samples idx as a [len(idx), Dim] tensor plus labels.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	w := d.Shape.Dim()
	x := tensor.New(len(idx), w)
	y := make([]int, len(idx))
	for bi, i := range idx {
		copy(x.Data[bi*w:(bi+1)*w], d.Sample(i))
		y[bi] = d.Y[i]
	}
	return x, y
}

// Tensor materializes the whole dataset as a [N, Dim] tensor.
func (d *Dataset) Tensor() *tensor.Tensor {
	x := tensor.New(d.Len(), d.Shape.Dim())
	copy(x.Data, d.X)
	return x
}

// Split partitions the dataset into train and test parts with testFrac of
// the samples (per class, to keep splits stratified) going to test.
func (d *Dataset) Split(testFrac float64, r *rng.RNG) (train, test *Dataset) {
	perClass := make(map[int][]int, d.Classes)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	var trainIdx, testIdx []int
	for c := 0; c < d.Classes; c++ {
		idx := perClass[c]
		if len(idx) == 0 {
			continue
		}
		perm := r.Perm(len(idx))
		nTest := int(math.Round(testFrac * float64(len(idx))))
		if nTest >= len(idx) {
			nTest = len(idx) - 1
		}
		for k, p := range perm {
			if k < nTest {
				testIdx = append(testIdx, idx[p])
			} else {
				trainIdx = append(trainIdx, idx[p])
			}
		}
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// Reserve implements the paper's reserved clean dataset DS: it returns a
// stratified random frac (e.g. 0.01, 0.05, 0.10) of d. The defender only
// ever sees this slice of the test set.
func (d *Dataset) Reserve(frac float64, r *rng.RNG) *Dataset {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("data: Reserve frac %v outside (0,1]", frac))
	}
	perClass := make(map[int][]int, d.Classes)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	var keep []int
	for c := 0; c < d.Classes; c++ {
		idx := perClass[c]
		if len(idx) == 0 {
			continue
		}
		n := int(math.Ceil(frac * float64(len(idx))))
		sel := r.Sample(len(idx), n)
		for _, s := range sel {
			keep = append(keep, idx[s])
		}
	}
	res := d.Subset(keep)
	res.Name = fmt.Sprintf("%s-reserved%.0f%%", d.Name, frac*100)
	return res
}

// ClassIndices returns the sample indices belonging to class c.
func (d *Dataset) ClassIndices(c int) []int {
	var out []int
	for i, y := range d.Y {
		if y == c {
			out = append(out, i)
		}
	}
	return out
}

// Resize returns a copy of the dataset with every sample bilinearly resized
// to the target height and width (channel count preserved). Visual prompting
// uses this to place target-domain images inside the source-domain canvas.
func (d *Dataset) Resize(h, w int) *Dataset {
	out := &Dataset{
		Name:    d.Name,
		Shape:   Shape{C: d.Shape.C, H: h, W: w},
		Classes: d.Classes,
		Y:       append([]int(nil), d.Y...),
	}
	out.X = make([]float64, d.Len()*out.Shape.Dim())
	buf := make([]float64, out.Shape.Dim())
	for i := 0; i < d.Len(); i++ {
		ResizeImage(d.Sample(i), d.Shape, buf, out.Shape)
		copy(out.X[i*len(buf):(i+1)*len(buf)], buf)
	}
	return out
}

// ResizeImage bilinearly resamples src (srcShape) into dst (dstShape). The
// channel counts must match.
func ResizeImage(src []float64, srcShape Shape, dst []float64, dstShape Shape) {
	if srcShape.C != dstShape.C {
		panic(fmt.Sprintf("data: resize channel mismatch %d -> %d", srcShape.C, dstShape.C))
	}
	sh, sw := srcShape.H, srcShape.W
	dh, dw := dstShape.H, dstShape.W
	for c := 0; c < srcShape.C; c++ {
		sOff := c * sh * sw
		dOff := c * dh * dw
		for y := 0; y < dh; y++ {
			fy := 0.0
			if dh > 1 {
				fy = float64(y) * float64(sh-1) / float64(dh-1)
			}
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= sh {
				y1 = sh - 1
			}
			wy := fy - float64(y0)
			for x := 0; x < dw; x++ {
				fx := 0.0
				if dw > 1 {
					fx = float64(x) * float64(sw-1) / float64(dw-1)
				}
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= sw {
					x1 = sw - 1
				}
				wx := fx - float64(x0)
				v00 := src[sOff+y0*sw+x0]
				v01 := src[sOff+y0*sw+x1]
				v10 := src[sOff+y1*sw+x0]
				v11 := src[sOff+y1*sw+x1]
				dst[dOff+y*dw+x] = v00*(1-wy)*(1-wx) + v01*(1-wy)*wx + v10*wy*(1-wx) + v11*wy*wx
			}
		}
	}
}
