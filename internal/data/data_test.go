package data

import (
	"math"
	"testing"
	"testing/quick"

	"bprom/internal/rng"
)

func TestSpecPresetsMatchPaperClassCounts(t *testing.T) {
	want := map[string]int{
		CIFAR10: 10, GTSRB: 43, STL10: 10, SVHN: 10,
		CIFAR100: 100, TinyImageNet: 200, ImageNet: 1000,
	}
	for name, classes := range want {
		spec, ok := SpecFor(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if spec.Classes != classes {
			t.Errorf("%s: %d classes, want %d", name, spec.Classes, classes)
		}
		if !spec.Shape.Valid() {
			t.Errorf("%s: invalid shape %+v", name, spec.Shape)
		}
	}
	if _, ok := SpecFor("mnist-of-doom"); ok {
		t.Fatal("unknown preset accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec := MustSpec(CIFAR10)
	g1 := NewGenerator(spec, 7)
	g2 := NewGenerator(spec, 7)
	d1 := g1.Generate(3, rng.New(1))
	d2 := g2.Generate(3, rng.New(1))
	if d1.Len() != d2.Len() {
		t.Fatal("lengths differ")
	}
	for i := range d1.X {
		if d1.X[i] != d2.X[i] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestGeneratorPixelsInRange(t *testing.T) {
	g := NewGenerator(MustSpec(SVHN), 3)
	d := g.Generate(5, rng.New(2))
	for _, v := range d.X {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

func TestGeneratorBalancedClasses(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 4)
	d := g.Generate(6, rng.New(3))
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 6 {
			t.Fatalf("class %d has %d samples, want 6", c, n)
		}
	}
}

// Classes must be separable: intra-class distance noticeably below
// inter-class distance, otherwise nothing downstream can learn.
func TestClassClusterSeparation(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 5)
	d := g.Generate(10, rng.New(4))
	centroid := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	w := d.Shape.Dim()
	for c := range centroid {
		centroid[c] = make([]float64, w)
	}
	for i := 0; i < d.Len(); i++ {
		y := d.Y[i]
		counts[y]++
		for j, v := range d.Sample(i) {
			centroid[y][j] += v
		}
	}
	for c := range centroid {
		for j := range centroid[c] {
			centroid[c][j] /= float64(counts[c])
		}
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < d.Len(); i++ {
		y := d.Y[i]
		intra += dist(d.Sample(i), centroid[y])
		nIntra++
	}
	for a := 0; a < d.Classes; a++ {
		for b := a + 1; b < d.Classes; b++ {
			inter += dist(centroid[a], centroid[b])
			nInter++
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter < 1.5*intra {
		t.Fatalf("classes not separable: intra %.3f vs inter %.3f", intra, inter)
	}
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestSubsetAndSampleViews(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 1)
	d := g.Generate(2, rng.New(1))
	sub := d.Subset([]int{0, 5, 7})
	if sub.Len() != 3 {
		t.Fatalf("Subset len %d", sub.Len())
	}
	if sub.Y[1] != d.Y[5] {
		t.Fatal("Subset labels wrong")
	}
	// Subset must copy
	sub.Sample(0)[0] = -99
	if d.Sample(0)[0] == -99 {
		t.Fatal("Subset must not alias parent data")
	}
	// Sample is a view
	d.Sample(1)[0] = 0.123
	if d.X[d.Shape.Dim()] != 0.123 {
		t.Fatal("Sample must be a view")
	}
}

func TestSplitStratifiedAndDisjoint(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 2)
	d := g.Generate(10, rng.New(5))
	train, test := d.Split(0.3, rng.New(6))
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d + %d != %d", train.Len(), test.Len(), d.Len())
	}
	counts := make([]int, d.Classes)
	for _, y := range test.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 3 {
			t.Fatalf("test class %d has %d samples, want 3", c, n)
		}
	}
}

func TestReserveFraction(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 3)
	d := g.Generate(20, rng.New(7))
	for _, frac := range []float64{0.01, 0.05, 0.10} {
		res := d.Reserve(frac, rng.New(8))
		wantPerClass := int(math.Ceil(frac * 20))
		if res.Len() != wantPerClass*d.Classes {
			t.Fatalf("Reserve(%v) kept %d samples, want %d", frac, res.Len(), wantPerClass*d.Classes)
		}
	}
}

func TestReservePanicsOnBadFrac(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 3)
	d := g.Generate(2, rng.New(7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Reserve(0, rng.New(1))
}

func TestAppendShapeMismatch(t *testing.T) {
	a := NewGenerator(MustSpec(CIFAR10), 1).Generate(1, rng.New(1))
	b := NewGenerator(MustSpec(STL10), 1).Generate(1, rng.New(1))
	if err := a.Append(b); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	c := NewGenerator(MustSpec(CIFAR10), 2).Generate(1, rng.New(2))
	n := a.Len()
	if err := a.Append(c); err != nil {
		t.Fatal(err)
	}
	if a.Len() != n+c.Len() {
		t.Fatal("append did not grow dataset")
	}
}

func TestBatchMaterialization(t *testing.T) {
	d := NewGenerator(MustSpec(CIFAR10), 1).Generate(3, rng.New(1))
	x, y := d.Batch([]int{2, 0})
	if x.Dim(0) != 2 || x.Dim(1) != d.Shape.Dim() {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if y[0] != d.Y[2] || y[1] != d.Y[0] {
		t.Fatal("batch labels wrong")
	}
	if x.Data[0] != d.Sample(2)[0] {
		t.Fatal("batch pixels wrong")
	}
}

func TestResizeIdentity(t *testing.T) {
	d := NewGenerator(MustSpec(CIFAR10), 1).Generate(2, rng.New(1))
	same := d.Resize(d.Shape.H, d.Shape.W)
	for i := range d.X {
		if math.Abs(d.X[i]-same.X[i]) > 1e-12 {
			t.Fatal("identity resize changed pixels")
		}
	}
}

func TestResizePreservesRangeAndShape(t *testing.T) {
	f := func(seed uint64, rh, rw uint8) bool {
		h, w := int(rh%10)+2, int(rw%10)+2
		d := NewGenerator(MustSpec(STL10), seed).Generate(1, rng.New(seed))
		out := d.Resize(h, w)
		if out.Shape.H != h || out.Shape.W != w || out.Shape.C != d.Shape.C {
			return false
		}
		for _, v := range out.X {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResizeConstantImageStaysConstant(t *testing.T) {
	src := make([]float64, 3*4*4)
	for i := range src {
		src[i] = 0.7
	}
	dst := make([]float64, 3*9*9)
	ResizeImage(src, Shape{3, 4, 4}, dst, Shape{3, 9, 9})
	for _, v := range dst {
		if math.Abs(v-0.7) > 1e-12 {
			t.Fatalf("constant image resampled to %v", v)
		}
	}
}

func TestClassIndices(t *testing.T) {
	d := NewGenerator(MustSpec(CIFAR10), 1).Generate(3, rng.New(9))
	idx := d.ClassIndices(4)
	if len(idx) != 3 {
		t.Fatalf("ClassIndices(4) len %d", len(idx))
	}
	for _, i := range idx {
		if d.Y[i] != 4 {
			t.Fatal("ClassIndices returned wrong class")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	d := NewGenerator(MustSpec(CIFAR10), 1).Generate(1, rng.New(1))
	c := d.Clone()
	c.X[0] = -5
	c.Y[0] = 9
	if d.X[0] == -5 || (d.Y[0] == 9 && d.Y[0] != c.Y[0]) {
		t.Fatal("Clone aliases parent")
	}
}

func TestGenerateSplitDisjointStreams(t *testing.T) {
	g := NewGenerator(MustSpec(CIFAR10), 11)
	train, test := g.GenerateSplit(5, 2, rng.New(12))
	if train.Len() != 5*10 || test.Len() != 2*10 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Train and test should not share identical samples (jitter should differ).
	w := train.Shape.Dim()
	for i := 0; i < test.Len(); i++ {
		for j := 0; j < train.Len(); j++ {
			same := true
			for k := 0; k < w; k++ {
				if test.X[i*w+k] != train.X[j*w+k] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("identical sample appears in both train and test")
			}
		}
	}
}
