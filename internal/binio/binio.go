// Package binio provides the little-endian binary encoding primitives
// shared by the persistent artifact formats (the bprom detector artifact
// and its meta / vp / data sections). The conventions mirror the nn
// checkpoint format (internal/nn/serialize.go): fixed-width little-endian
// integers, float64 bit patterns, and length-prefixed strings and slices,
// so every artifact round-trips byte-for-byte.
//
// All readers validate length prefixes against generous plausibility caps
// before allocating, so a corrupt or truncated artifact fails with an error
// instead of an absurd allocation.
package binio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// maxLen caps length prefixes (strings, slices) at 1Gi entries. Nothing in
// a detector artifact is remotely that large; a bigger prefix means a
// corrupt or malicious file.
const maxLen = 1 << 30

// WriteU32 writes v as 4 little-endian bytes.
func WriteU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("binio: write u32: %w", err)
	}
	return nil
}

// ReadU32 reads 4 little-endian bytes as a uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("binio: read u32: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// WriteU64 writes v as 8 little-endian bytes.
func WriteU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("binio: write u64: %w", err)
	}
	return nil
}

// ReadU64 reads 8 little-endian bytes as a uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("binio: read u64: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteF64 writes the IEEE-754 bit pattern of v (exact round-trip).
func WriteF64(w io.Writer, v float64) error {
	return WriteU64(w, math.Float64bits(v))
}

// ReadF64 reads one float64 bit pattern.
func ReadF64(r io.Reader) (float64, error) {
	bits, err := ReadU64(r)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// WriteBool writes v as one byte (0 or 1).
func WriteBool(w io.Writer, v bool) error {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("binio: write bool: %w", err)
	}
	return nil
}

// ReadBool reads one byte as a bool; any value other than 0 or 1 is a
// format error.
func ReadBool(r io.Reader) (bool, error) {
	var buf [1]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return false, fmt.Errorf("binio: read bool: %w", err)
	}
	switch buf[0] {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("binio: invalid bool byte %d", buf[0])
	}
}

// WriteString writes a u32 length prefix followed by the raw bytes.
func WriteString(w io.Writer, s string) error {
	if err := WriteU32(w, uint32(len(s))); err != nil {
		return err
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("binio: write string: %w", err)
	}
	return nil
}

// ReadString reads a length-prefixed string.
func ReadString(r io.Reader) (string, error) {
	n, err := ReadU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("binio: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("binio: read string: %w", err)
	}
	return string(buf), nil
}

// WriteFloats writes a u32 length prefix followed by each float64's bit
// pattern.
func WriteFloats(w io.Writer, data []float64) error {
	if err := WriteU32(w, uint32(len(data))); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("binio: write floats: %w", err)
		}
	}
	return nil
}

// ReadFloats reads a length-prefixed float64 slice.
func ReadFloats(r io.Reader) ([]float64, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxLen/8 {
		return nil, fmt.Errorf("binio: implausible float count %d", n)
	}
	out := make([]float64, n)
	if err := readFloatData(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFloatsInto reads a length-prefixed float64 block whose length must
// match len(dst) exactly — for fields whose size the caller already knows
// (e.g. layer weights sized by the checkpoint header).
func ReadFloatsInto(r io.Reader, dst []float64) error {
	n, err := ReadU32(r)
	if err != nil {
		return err
	}
	if int(n) != len(dst) {
		return fmt.Errorf("binio: float block length %d, expected %d", n, len(dst))
	}
	return readFloatData(r, dst)
}

func readFloatData(r io.Reader, dst []float64) error {
	var buf [8]byte
	for i := range dst {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return fmt.Errorf("binio: read floats: %w", err)
		}
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return nil
}

// WriteInts writes a u32 length prefix followed by each value as a u32.
// Values must be non-negative and fit in 32 bits (sample indices, labels).
func WriteInts(w io.Writer, data []int) error {
	if err := WriteU32(w, uint32(len(data))); err != nil {
		return err
	}
	for _, v := range data {
		if v < 0 || int64(v) > int64(^uint32(0)) {
			return fmt.Errorf("binio: int %d not encodable as u32", v)
		}
		if err := WriteU32(w, uint32(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadInts reads a length-prefixed u32 slice as ints.
func ReadInts(r io.Reader) ([]int, error) {
	n, err := ReadU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxLen/4 {
		return nil, fmt.Errorf("binio: implausible int count %d", n)
	}
	out := make([]int, n)
	for i := range out {
		v, err := ReadU32(r)
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}
