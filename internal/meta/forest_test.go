package meta

import (
	"testing"

	"bprom/internal/metric"
	"bprom/internal/rng"
)

// twoBlob builds a linearly separable binary dataset.
func twoBlob(n int, gap float64, r *rng.RNG) ([][]float64, []bool) {
	x := make([][]float64, 0, 2*n)
	y := make([]bool, 0, 2*n)
	for i := 0; i < n; i++ {
		x = append(x, []float64{r.NormFloat64(), r.NormFloat64()})
		y = append(y, false)
		x = append(x, []float64{gap + r.NormFloat64(), gap + r.NormFloat64()})
		y = append(y, true)
	}
	return x, y
}

func TestForestSeparableData(t *testing.T) {
	r := rng.New(1)
	x, y := twoBlob(30, 6, r)
	f, err := Train(x, y, TrainConfig{Trees: 50}, r)
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := twoBlob(20, 6, rng.New(2))
	correct := 0
	for i := range xt {
		pred, err := f.Predict(xt[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xt)); acc < 0.95 {
		t.Fatalf("forest accuracy %.3f on separable data", acc)
	}
}

func TestForestScoreAUROC(t *testing.T) {
	r := rng.New(3)
	x, y := twoBlob(25, 3, r)
	f, err := Train(x, y, TrainConfig{Trees: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := twoBlob(25, 3, rng.New(4))
	scores := make([]float64, len(xt))
	for i := range xt {
		s, err := f.Score(xt[i])
		if err != nil {
			t.Fatal(err)
		}
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
		scores[i] = s
	}
	auc, err := metric.AUROC(scores, yt)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.95 {
		t.Fatalf("forest AUROC %.3f", auc)
	}
}

func TestForestHighDimFewSamples(t *testing.T) {
	// The BPROM regime: ~20 samples, hundreds of features, signal in a few.
	r := rng.New(5)
	n, d := 20, 300
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		x[i] = make([]float64, d)
		r.Gaussian(x[i], 0, 1)
		y[i] = i%2 == 0
		if y[i] {
			x[i][7] += 3 // informative feature
			x[i][42] += 3
		}
	}
	f, err := Train(x, y, TrainConfig{Trees: 200}, r)
	if err != nil {
		t.Fatal(err)
	}
	// fresh draws from the same distribution
	correct := 0
	for i := 0; i < 40; i++ {
		row := make([]float64, d)
		r.Gaussian(row, 0, 1)
		label := i%2 == 0
		if label {
			row[7] += 3
			row[42] += 3
		}
		pred, err := f.Predict(row)
		if err != nil {
			t.Fatal(err)
		}
		if pred == label {
			correct++
		}
	}
	if correct < 30 {
		t.Fatalf("high-dim forest got %d/40", correct)
	}
}

func TestForestDeterministic(t *testing.T) {
	x, y := twoBlob(10, 4, rng.New(6))
	f1, err := Train(x, y, TrainConfig{Trees: 20}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(x, y, TrainConfig{Trees: 20}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, 1}
	s1, _ := f1.Score(probe)
	s2, _ := f2.Score(probe)
	if s1 != s2 {
		t.Fatal("same seed produced different forests")
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := Train(nil, nil, TrainConfig{}, rng.New(1)); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, err := Train([][]float64{{1}}, []bool{true, false}, TrainConfig{}, rng.New(1)); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Train([][]float64{{1}, {2, 3}}, []bool{true, false}, TrainConfig{}, rng.New(1)); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := Train([][]float64{{1}, {2}}, []bool{true, true}, TrainConfig{}, rng.New(1)); err == nil {
		t.Fatal("expected error for single-class labels")
	}
}

func TestForestScoreDimensionCheck(t *testing.T) {
	x, y := twoBlob(10, 4, rng.New(8))
	f, err := Train(x, y, TrainConfig{Trees: 10}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Score([]float64{1}); err == nil {
		t.Fatal("expected error for wrong feature count")
	}
}

func TestOOBScoresUnbiasedOrdering(t *testing.T) {
	r := rng.New(21)
	x, y := twoBlob(20, 3, r)
	f, err := Train(x, y, TrainConfig{Trees: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	oob, err := f.OOBScores(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(oob) != len(x) {
		t.Fatalf("%d OOB scores for %d rows", len(oob), len(x))
	}
	var cSum, bSum float64
	var cN, bN int
	for i, s := range oob {
		if s < 0 || s > 1 {
			t.Fatalf("OOB score %v outside [0,1]", s)
		}
		if y[i] {
			bSum += s
			bN++
		} else {
			cSum += s
			cN++
		}
	}
	if bSum/float64(bN) <= cSum/float64(cN) {
		t.Fatalf("OOB positives (%.3f) not above negatives (%.3f)", bSum/float64(bN), cSum/float64(cN))
	}
	// In-sample Score overfits toward 0/1; OOB must be strictly less
	// extreme on average for the positives.
	var inSum float64
	for i := range x {
		if !y[i] {
			continue
		}
		s, err := f.Score(x[i])
		if err != nil {
			t.Fatal(err)
		}
		inSum += s
	}
	if bSum/float64(bN) > inSum/float64(bN)+1e-9 {
		t.Fatalf("OOB positive mean %.3f exceeds in-sample %.3f", bSum/float64(bN), inSum/float64(bN))
	}
}

func TestOOBScoresDimCheck(t *testing.T) {
	x, y := twoBlob(6, 4, rng.New(22))
	f, err := Train(x, y, TrainConfig{Trees: 10}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.OOBScores([][]float64{{1}}); err == nil {
		t.Fatal("expected feature-count error")
	}
}
