// Package meta implements the meta-classifier of BPROM: a random forest
// (bootstrap-aggregated CART trees with per-split feature subsampling) that
// maps concatenated confidence vectors of a prompted model to a clean /
// backdoor verdict. The paper uses a 10,000-tree forest; the default here is
// 200, which saturates accuracy at our scale (see DESIGN.md substitutions).
package meta

import (
	"fmt"
	"math"
	"sort"

	"bprom/internal/rng"
)

// TrainConfig controls forest training.
type TrainConfig struct {
	// Trees is the ensemble size. Default 200.
	Trees int
	// MaxDepth bounds tree depth. Default 8.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf. Default 1.
	MinLeaf int
	// FeatureFrac is the fraction of features examined per split; 0 selects
	// sqrt(d)/d (the classification default).
	FeatureFrac float64
}

func (c *TrainConfig) defaults() {
	if c.Trees <= 0 {
		c.Trees = 200
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
}

// Forest is a trained random forest for binary classification.
type Forest struct {
	Trees       []*node
	NumFeatures int
	// inBag[t][i] records whether training row i entered tree t's bootstrap
	// sample; OOBScores uses it for unbiased training-set scores.
	inBag [][]bool
}

// node is one CART node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right *node
	prob        float64 // P(positive) at a leaf
}

// Train fits a forest on feature rows X with binary labels y (true =
// backdoor). Rows must be non-empty and rectangular.
func Train(x [][]float64, y []bool, cfg TrainConfig, r *rng.RNG) (*Forest, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("meta: empty training set")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("meta: %d rows for %d labels", len(x), len(y))
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("meta: row %d has %d features, want %d", i, len(row), d)
		}
	}
	var pos, neg int
	for _, l := range y {
		if l {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("meta: training set has %d positive and %d negative samples; need both", pos, neg)
	}
	cfg.defaults()
	mtry := int(cfg.FeatureFrac * float64(d))
	if cfg.FeatureFrac <= 0 {
		mtry = int(math.Sqrt(float64(d)))
	}
	if mtry < 1 {
		mtry = 1
	}
	if mtry > d {
		mtry = d
	}
	f := &Forest{NumFeatures: d, Trees: make([]*node, cfg.Trees), inBag: make([][]bool, cfg.Trees)}
	for t := range f.Trees {
		tr := r.Split("tree", t)
		// bootstrap sample
		idx := make([]int, len(x))
		f.inBag[t] = make([]bool, len(x))
		for i := range idx {
			idx[i] = tr.Intn(len(x))
			f.inBag[t][idx[i]] = true
		}
		f.Trees[t] = growTree(x, y, idx, cfg, mtry, tr, 0)
	}
	return f, nil
}

// OOBScores returns out-of-bag scores for the TRAINING rows the forest was
// fitted on: row i is scored only by trees whose bootstrap excluded it,
// giving an unbiased estimate of held-out scores. Rows that every tree saw
// (vanishingly rare for usual tree counts) fall back to the full-forest
// score. The caller must pass the same rows, in the same order, as Train.
func (f *Forest) OOBScores(x [][]float64) ([]float64, error) {
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) != f.NumFeatures {
			return nil, fmt.Errorf("meta: row %d has %d features, forest expects %d", i, len(row), f.NumFeatures)
		}
		sum, n := 0.0, 0
		for t, tree := range f.Trees {
			if i < len(f.inBag[t]) && f.inBag[t][i] {
				continue
			}
			node := tree
			for node.feature >= 0 {
				if row[node.feature] <= node.threshold {
					node = node.left
				} else {
					node = node.right
				}
			}
			sum += node.prob
			n++
		}
		if n == 0 {
			s, err := f.Score(row)
			if err != nil {
				return nil, err
			}
			out[i] = s
			continue
		}
		out[i] = sum / float64(n)
	}
	return out, nil
}

func growTree(x [][]float64, y []bool, idx []int, cfg TrainConfig, mtry int, r *rng.RNG, depth int) *node {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= cfg.MaxDepth || len(idx) <= cfg.MinLeaf || pos == 0 || pos == len(idx) {
		return &node{feature: -1, prob: prob}
	}
	d := len(x[0])
	bestGini := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0
	feats := r.Sample(d, mtry)
	vals := make([]float64, 0, len(idx))
	for _, fi := range feats {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, x[i][fi])
		}
		sort.Float64s(vals)
		for v := 0; v+1 < len(vals); v++ {
			if vals[v] == vals[v+1] {
				continue
			}
			th := (vals[v] + vals[v+1]) / 2
			var lp, ln, rp, rn int
			for _, i := range idx {
				if x[i][fi] <= th {
					if y[i] {
						lp++
					} else {
						ln++
					}
				} else {
					if y[i] {
						rp++
					} else {
						rn++
					}
				}
			}
			lTot, rTot := lp+ln, rp+rn
			if lTot < cfg.MinLeaf || rTot < cfg.MinLeaf {
				continue
			}
			g := gini(lp, lTot)*float64(lTot) + gini(rp, rTot)*float64(rTot)
			if g < bestGini {
				bestGini, bestFeat, bestThresh = g, fi, th
			}
		}
	}
	if bestFeat < 0 {
		return &node{feature: -1, prob: prob}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      growTree(x, y, li, cfg, mtry, r, depth+1),
		right:     growTree(x, y, ri, cfg, mtry, r, depth+1),
	}
}

func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

// Score returns the forest's probability that the feature row is positive
// (backdoored): the mean leaf probability across trees.
func (f *Forest) Score(row []float64) (float64, error) {
	if len(row) != f.NumFeatures {
		return 0, fmt.Errorf("meta: row has %d features, forest expects %d", len(row), f.NumFeatures)
	}
	s := 0.0
	for _, t := range f.Trees {
		n := t
		for n.feature >= 0 {
			if row[n.feature] <= n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		s += n.prob
	}
	return s / float64(len(f.Trees)), nil
}

// Predict thresholds Score at 0.5.
func (f *Forest) Predict(row []float64) (bool, error) {
	s, err := f.Score(row)
	if err != nil {
		return false, err
	}
	return s >= 0.5, nil
}
