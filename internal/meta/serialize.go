package meta

import (
	"fmt"
	"io"

	"bprom/internal/binio"
)

// Binary forest section of the detector artifact: feature count, ensemble
// size, the in-bag bootstrap matrix (so OOBScores keeps working on a loaded
// forest), then every tree as a tag-prefixed recursive node list — the same
// append-only tag discipline as the nn checkpoint format. The section has no
// magic of its own; the enclosing artifact (internal/bprom/serialize.go)
// carries magic and version.

// Node tags. Values are stable once released — append only.
const (
	tagLeaf byte = iota + 1
	tagSplit
)

// Save writes the forest section to w.
func (f *Forest) Save(w io.Writer) error {
	if err := binio.WriteU32(w, uint32(f.NumFeatures)); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(len(f.Trees))); err != nil {
		return err
	}
	rows := 0
	if len(f.inBag) > 0 {
		rows = len(f.inBag[0])
	}
	if err := binio.WriteU32(w, uint32(rows)); err != nil {
		return err
	}
	for t, tree := range f.Trees {
		for i := 0; i < rows; i++ {
			if err := binio.WriteBool(w, f.inBag[t][i]); err != nil {
				return err
			}
		}
		if err := writeNode(w, tree); err != nil {
			return fmt.Errorf("meta: tree %d: %w", t, err)
		}
	}
	return nil
}

// Load reads a forest section previously written by Save.
func Load(r io.Reader) (*Forest, error) {
	numFeatures, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	trees, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	if trees > 1<<20 {
		return nil, fmt.Errorf("meta: implausible tree count %d", trees)
	}
	rows, err := binio.ReadU32(r)
	if err != nil {
		return nil, err
	}
	if rows > 1<<20 {
		return nil, fmt.Errorf("meta: implausible training-row count %d", rows)
	}
	f := &Forest{
		NumFeatures: int(numFeatures),
		Trees:       make([]*node, trees),
		inBag:       make([][]bool, trees),
	}
	for t := range f.Trees {
		f.inBag[t] = make([]bool, rows)
		for i := range f.inBag[t] {
			b, err := binio.ReadBool(r)
			if err != nil {
				return nil, err
			}
			f.inBag[t][i] = b
		}
		tree, err := readNode(r, 0, int(numFeatures))
		if err != nil {
			return nil, fmt.Errorf("meta: tree %d: %w", t, err)
		}
		f.Trees[t] = tree
	}
	return f, nil
}

func writeNode(w io.Writer, n *node) error {
	if n.feature < 0 {
		if _, err := w.Write([]byte{tagLeaf}); err != nil {
			return err
		}
		return binio.WriteF64(w, n.prob)
	}
	if _, err := w.Write([]byte{tagSplit}); err != nil {
		return err
	}
	if err := binio.WriteU32(w, uint32(n.feature)); err != nil {
		return err
	}
	if err := binio.WriteF64(w, n.threshold); err != nil {
		return err
	}
	if err := writeNode(w, n.left); err != nil {
		return err
	}
	return writeNode(w, n.right)
}

// maxTreeDepth caps decode recursion; trained trees are depth-bounded by
// TrainConfig.MaxDepth, so anything deeper is a corrupt artifact.
const maxTreeDepth = 64

func readNode(r io.Reader, depth, numFeatures int) (*node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("tree deeper than %d: corrupt artifact", maxTreeDepth)
	}
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, fmt.Errorf("read node tag: %w", err)
	}
	switch tag[0] {
	case tagLeaf:
		prob, err := binio.ReadF64(r)
		if err != nil {
			return nil, err
		}
		return &node{feature: -1, prob: prob}, nil
	case tagSplit:
		feature, err := binio.ReadU32(r)
		if err != nil {
			return nil, err
		}
		// An out-of-range split feature would panic Score mid-audit;
		// reject it at load time like every other corruption.
		if int(feature) >= numFeatures {
			return nil, fmt.Errorf("split on feature %d of %d: corrupt artifact", feature, numFeatures)
		}
		threshold, err := binio.ReadF64(r)
		if err != nil {
			return nil, err
		}
		left, err := readNode(r, depth+1, numFeatures)
		if err != nil {
			return nil, err
		}
		right, err := readNode(r, depth+1, numFeatures)
		if err != nil {
			return nil, err
		}
		return &node{feature: int(feature), threshold: threshold, left: left, right: right}, nil
	default:
		return nil, fmt.Errorf("unknown node tag %d", tag[0])
	}
}
