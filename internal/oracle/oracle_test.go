package oracle

import (
	"context"
	"math"
	"sync"
	"testing"

	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
)

func testModel(t *testing.T) *nn.Model {
	t.Helper()
	m, err := nn.Build(nn.ArchConfig{Arch: nn.ArchResNetLite, C: 1, H: 4, W: 4, NumClasses: 3, Hidden: 8}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelOraclePredictConfidences(t *testing.T) {
	o := NewModelOracle(testModel(t))
	if o.NumClasses() != 3 || o.InputDim() != 16 {
		t.Fatalf("metadata %d/%d", o.NumClasses(), o.InputDim())
	}
	x := tensor.New(4, 16)
	rng.New(2).Uniform(x.Data, 0, 1)
	probs, err := o.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sum := 0.0
		for _, v := range probs.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("confidence %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row sums to %v", sum)
		}
	}
}

func TestModelOracleRejectsBadShape(t *testing.T) {
	o := NewModelOracle(testModel(t))
	if _, err := o.Predict(context.Background(), tensor.New(2, 7)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestModelOracleRespectsContext(t *testing.T) {
	o := NewModelOracle(testModel(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.Predict(ctx, tensor.New(1, 16)); err == nil {
		t.Fatal("expected context error")
	}
}

func TestCounterCountsSamples(t *testing.T) {
	c := NewCounter(NewModelOracle(testModel(t)))
	ctx := context.Background()
	if _, err := c.Predict(ctx, tensor.New(5, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(ctx, tensor.New(3, 16)); err != nil {
		t.Fatal(err)
	}
	if c.Queries() != 8 {
		t.Fatalf("Queries = %d, want 8", c.Queries())
	}
	c.Reset()
	if c.Queries() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestCounterDoesNotCountFailures(t *testing.T) {
	c := NewCounter(NewModelOracle(testModel(t)))
	if _, err := c.Predict(context.Background(), tensor.New(2, 7)); err == nil {
		t.Fatal("expected error")
	}
	if c.Queries() != 0 {
		t.Fatalf("failed query counted: %d", c.Queries())
	}
}

func TestCounterConcurrentSafety(t *testing.T) {
	c := NewCounter(&stubOracle{classes: 2, dim: 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := c.Predict(context.Background(), tensor.New(2, 4)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Queries() != 8*100*2 {
		t.Fatalf("Queries = %d, want %d", c.Queries(), 8*100*2)
	}
}

// stubOracle is a trivial thread-safe oracle for concurrency tests.
type stubOracle struct {
	classes, dim int
}

func (s *stubOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(x.Dim(0), s.classes)
	for i := 0; i < x.Dim(0); i++ {
		out.Set(1, i, 0)
	}
	return out, nil
}

func (s *stubOracle) NumClasses() int { return s.classes }
func (s *stubOracle) InputDim() int   { return s.dim }

var _ Oracle = (*stubOracle)(nil)

// limitedStub is a stubOracle that advertises a per-request batch cap.
type limitedStub struct {
	stubOracle
	max int
}

func (s *limitedStub) MaxBatch() int { return s.max }

func TestCounterExposesBatchLimit(t *testing.T) {
	plain := NewCounter(&stubOracle{classes: 3, dim: 4})
	if got := plain.MaxBatch(); got != 0 {
		t.Fatalf("unlimited oracle reported MaxBatch %d, want 0", got)
	}
	capped := NewCounter(&limitedStub{stubOracle: stubOracle{classes: 3, dim: 4}, max: 64})
	if got := capped.MaxBatch(); got != 64 {
		t.Fatalf("MaxBatch %d not forwarded through Counter, want 64", got)
	}
	var _ BatchLimiter = capped
}
