// Package oracle defines black-box access to a suspicious model. BPROM's
// threat model gives the defender nothing but confidence vectors for chosen
// inputs — no parameters, gradients, or architecture. Everything in
// internal/bprom that touches the suspicious model goes through this
// interface, so the same detector runs against an in-process model (tests,
// shadow models) or a remote MLaaS endpoint (internal/mlaas).
package oracle

import (
	"context"
	"fmt"
	"sync/atomic"

	"bprom/internal/nn"
	"bprom/internal/tensor"
)

// Oracle is a black-box classifier: inputs in, confidence vectors out.
//
// Predict accepts batches of any size: callers like the generation-batched
// CMA-ES evaluator (internal/vp) fuse a whole population's probes into one
// call. Implementations backed by a per-request transport limit (an MLaaS
// endpoint's max_batch) must chunk oversized batches internally rather than
// reject them, and may advertise the limit via BatchLimiter.
type Oracle interface {
	// Predict returns softmax confidence vectors [N, NumClasses] for a batch
	// of flattened inputs [N, InputDim].
	Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error)
	// NumClasses reports the label-space size (MLaaS APIs publish this).
	NumClasses() int
	// InputDim reports the flattened input width.
	InputDim() int
}

// BatchLimiter is optionally implemented by oracles whose backend caps the
// rows of a single transport request (mlaas.Client mirrors the endpoint's
// advertised max_batch; server-side audit oracles mirror the provider's).
// The limit is advisory — a BatchLimiter oracle still accepts arbitrarily
// large Predict batches and splits them internally — and it marks the
// oracle as self-chunking: batching callers (vp's prompted-prediction
// paths) hand such oracles one fused call covering everything, so the
// oracle's own parallel chunk fan-out sets the request width, instead of
// pre-splitting and serializing the round-trips. MaxBatch returns 0 when
// the backend advertises no limit.
type BatchLimiter interface {
	MaxBatch() int
}

// ModelOracle adapts an in-process nn.Model to the Oracle interface. It is
// safe for concurrent use: queries go through the model's stateless
// inference path, so any number of goroutines may Predict simultaneously.
type ModelOracle struct {
	model *nn.Model
}

var _ Oracle = (*ModelOracle)(nil)

// NewModelOracle wraps model. The model's weights must be frozen for the
// oracle's lifetime (detection-time models are, by construction); inference
// itself is reentrant and needs no external synchronization.
func NewModelOracle(model *nn.Model) *ModelOracle {
	return &ModelOracle{model: model}
}

func (o *ModelOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	if x.Rank() != 2 || x.Dim(1) != o.model.InputDim {
		return nil, fmt.Errorf("oracle: input shape %v, want [N %d]", x.Shape(), o.model.InputDim)
	}
	return o.model.Predict(x), nil
}

func (o *ModelOracle) NumClasses() int { return o.model.NumClasses }
func (o *ModelOracle) InputDim() int   { return o.model.InputDim }

// Counter wraps an Oracle and counts queries (individual samples, not
// batches). The paper reports query budgets; experiments use this to audit
// black-box cost. Safe for concurrent use.
//
// Accounting is per-row, so it is invariant to how probes are batched: a
// CMA-ES generation evaluated as one fused λ×k-row Predict costs exactly
// the λ separate k-row calls it replaces, and a client that splits a batch
// into several HTTP requests still counts it once. The serial-vs-batched
// parity tests assert this invariance end to end.
type Counter struct {
	inner   Oracle
	queries atomic.Int64
}

var _ Oracle = (*Counter)(nil)

// MaxBatch exposes the wrapped oracle's advertised per-request batch limit
// (0 when the oracle has none), so wrapping an oracle in a Counter does not
// hide it from batching callers.
func (c *Counter) MaxBatch() int {
	if bl, ok := c.inner.(BatchLimiter); ok {
		return bl.MaxBatch()
	}
	return 0
}

// NewCounter wraps inner with a query counter.
func NewCounter(inner Oracle) *Counter {
	return &Counter{inner: inner}
}

func (c *Counter) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := c.inner.Predict(ctx, x)
	if err == nil {
		c.queries.Add(int64(x.Dim(0)))
	}
	return out, err
}

func (c *Counter) NumClasses() int { return c.inner.NumClasses() }
func (c *Counter) InputDim() int   { return c.inner.InputDim() }

// Queries returns the number of samples sent to the oracle so far.
func (c *Counter) Queries() int64 { return c.queries.Load() }

// Add pre-charges the counter by n samples without touching the wrapped
// oracle. A resumed audit job uses it to restore the query total recorded in
// its last journal checkpoint, so the final verdict's Queries field matches
// an uninterrupted run exactly.
func (c *Counter) Add(n int64) { c.queries.Add(n) }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.queries.Store(0) }
