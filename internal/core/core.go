// Package core re-exports the paper's primary contribution — the BPROM
// black-box model-level backdoor detector — under the workspace's canonical
// "core" path. The implementation lives in internal/bprom; see that
// package's documentation for the algorithm walkthrough.
package core

import (
	"context"

	"bprom/internal/bprom"
	"bprom/internal/oracle"
)

// Config configures detector training (alias of bprom.Config).
type Config = bprom.Config

// Detector is a trained BPROM instance (alias of bprom.Detector).
type Detector = bprom.Detector

// Verdict is the result of inspecting a suspicious model.
type Verdict = bprom.Verdict

// Shadow is one trained + prompted shadow model.
type Shadow = bprom.Shadow

// Oracle is black-box access to a suspicious model.
type Oracle = oracle.Oracle

// Train runs BPROM's Algorithm 1 and returns a ready detector.
func Train(ctx context.Context, cfg Config) (*Detector, error) {
	return bprom.Train(ctx, cfg)
}
