// Package rng provides the deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table in EXPERIMENTS.md must be regenerable bit-for-bit from a seed. The
// standard library's math/rand/v2 offers no stable splitting discipline, so
// this package implements xoshiro256** seeded via splitmix64 (the reference
// seeding procedure recommended by the xoshiro authors) and derives child
// generators by hashing a label into the parent seed. Child streams are
// statistically independent for distinct labels, which lets concurrent
// shadow-model training draw from per-model streams without locking.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is NOT valid; construct
// with New or Split. RNG is not safe for concurrent use; Split per goroutine.
type RNG struct {
	s         [4]uint64
	haveSpare bool    // Box–Muller produces variates in pairs;
	spare     float64 // the second is cached here for the next call.
}

// splitmix64 advances the 64-bit state and returns the next output. It is
// used only to expand seeds into full xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro requires a nonzero state; splitmix64 of any seed yields one
	// with overwhelming probability, but guard the pathological case.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Split derives an independent child generator identified by label. Splitting
// the same parent state with the same label always yields the same child, so
// experiment code can fan out work deterministically:
//
//	shadowRNG := root.Split("shadow", i)
func (r *RNG) Split(label string, idx ...int) *RNG {
	st := r.Uint64()
	for _, b := range []byte(label) {
		st = st*1099511628211 + uint64(b) // FNV-style fold of the label
		st = splitmix64(&st)
	}
	for _, i := range idx {
		st = splitmix64(&st) ^ uint64(i)*0x9e3779b97f4a7c15
	}
	return New(splitmix64(&st))
}

// State captures the complete generator state as six words: the four
// xoshiro256** state words, the Box–Muller spare flag (0 or 1), and the
// cached spare variate as IEEE-754 bits. FromState(r.State()) yields a
// generator that continues r's stream bit-exactly, which is what lets a
// checkpointed detector search resume mid-stream after a restart.
func (r *RNG) State() [6]uint64 {
	st := [6]uint64{r.s[0], r.s[1], r.s[2], r.s[3], 0, math.Float64bits(r.spare)}
	if r.haveSpare {
		st[4] = 1
	}
	return st
}

// SetState overwrites r in place with a State() snapshot, for callers whose
// generator pointer is already shared (closures, evaluator structs).
func (r *RNG) SetState(st [6]uint64) {
	*r = *FromState(st)
}

// FromState reconstructs a generator from a State() snapshot.
func FromState(st [6]uint64) *RNG {
	r := &RNG{
		s:         [4]uint64{st[0], st[1], st[2], st[3]},
		haveSpare: st[4] != 0,
		spare:     math.Float64frombits(st[5]),
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at configuration boundaries.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// NormFloat64 returns a standard normal variate via the Box–Muller
// transform. It caches the second variate for the next call.
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.haveSpare = true
	return u * f
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n; experiment configs validate sizes up front.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		panic("rng: Sample k > n")
	}
	// Partial Fisher–Yates: only the first k slots are needed.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k:k]
}

// Gaussian fills dst with independent N(mu, sigma^2) variates.
func (r *RNG) Gaussian(dst []float64, mu, sigma float64) {
	for i := range dst {
		dst[i] = mu + sigma*r.NormFloat64()
	}
}

// Uniform fills dst with independent U[lo, hi) variates.
func (r *RNG) Uniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = lo + (hi-lo)*r.Float64()
	}
}
