package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero-seeded generator produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	ca, cb := a.Split("shadow", 3), b.Split("shadow", 3)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split children diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children with different labels/indices must not correlate with each
	// other or with the parent's continuing stream.
	parent := New(9)
	c1 := parent.Split("a", 0)
	c2 := parent.Split("a", 1)
	c3 := parent.Split("b", 0)
	streams := [][]uint64{drain(c1, 200), drain(c2, 200), drain(c3, 200), drain(parent, 200)}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			matches := 0
			for k := range streams[i] {
				if streams[i][k] == streams[j][k] {
					matches++
				}
			}
			if matches > 0 {
				t.Errorf("streams %d and %d share %d values", i, j, matches)
			}
		}
	}
}

func drain(r *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) bucket %d has count %d, expected ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed uint64, rawN, rawK uint8) bool {
		n := int(rawN%50) + 1
		k := int(rawK) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsWhenKExceedsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Sample(2, 3)")
		}
	}()
	New(1).Sample(2, 3)
}

func TestGaussianFill(t *testing.T) {
	r := New(23)
	buf := make([]float64, 50000)
	r.Gaussian(buf, 3, 2)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	mean := sum / float64(len(buf))
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Gaussian(3,2) mean %v", mean)
	}
}

func TestUniformFill(t *testing.T) {
	r := New(29)
	buf := make([]float64, 10000)
	r.Uniform(buf, -2, 5)
	for _, v := range buf {
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) produced %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
