#!/usr/bin/env bash
# bench.sh — run the repo's perf-trajectory benchmarks and emit a
# machine-readable BENCH_<issue>.json snapshot.
#
# The benchmark set, output path, and run length all come from flags (or the
# matching environment variables), so CI smoke runs, the committed per-PR
# records, and ad-hoc local measurements share one script:
#
#   scripts/bench.sh [-t benchtime] [-f filter] [-o output] [-i issue]
#
#     -t  go -benchtime value      (env BENCH_TIME,   default 10x)
#     -f  go -bench regexp         (env BENCH_FILTER, default: the PR 5/6/7
#                                   before/after pairs — fp-vs-int8 kernels,
#                                   dense-stack predict, TrainBlackBox, the
#                                   screened-vs-unscreened serving pair — and
#                                   the PR 8 gateway node-count series)
#     -o  output JSON path         (env BENCH_OUT,    default BENCH_8.json)
#     -i  issue number in the JSON (env BENCH_ISSUE,  default 8)
#
# Parsing is generic: every `Benchmark*` line in the output is captured with
# all its value/unit pairs (ns/op, B/op, allocs/op, and custom ReportMetric
# units like weight_bytes). Known before/after pairs additionally get a
# derived ratio section when both sides appear in the run.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCH_TIME:-10x}"
FILTER="${BENCH_FILTER:-MatMulTiledSerial\$|MatMulTiledServing|MatMulTiledFleet|QMatMulInt8|ModelPredictDense|TrainBlackBox|ServerPredictScreened|ServerPredictUnscreened|GatewayPredict[0-9]}"
OUT="${BENCH_OUT:-BENCH_8.json}"
ISSUE="${BENCH_ISSUE:-8}"

usage() { sed -n '2,21p' "$0" | sed 's/^# \{0,1\}//' >&2; exit 2; }
while getopts ':t:f:o:i:h' opt; do
    case "$opt" in
        t) BENCHTIME="$OPTARG" ;;
        f) FILTER="$OPTARG" ;;
        o) OUT="$OPTARG" ;;
        i) ISSUE="$OPTARG" ;;
        h | *) usage ;;
    esac
done
shift $((OPTIND - 1))
[ $# -eq 0 ] || usage

raw=$(go test -run '^$' -bench "$FILTER" -benchtime="$BENCHTIME" -benchmem .)
echo "$raw"

echo "$raw" | awk -v issue="$ISSUE" -v benchtime="$BENCHTIME" \
    -v filter="$FILTER" -v goversion="$(go version | awk '{print $3}')" '
function jsonkey(unit) {
    # ns/op -> ns_per_op, B/op -> bytes_per_op, allocs/op -> allocs_per_op;
    # custom units (weight_bytes, ...) pass through sanitized.
    if (unit == "ns/op") return "ns_per_op"
    if (unit == "B/op") return "bytes_per_op"
    if (unit == "allocs/op") return "allocs_per_op"
    gsub(/\//, "_per_", unit)
    gsub(/[^A-Za-z0-9_]/, "_", unit)
    return unit
}
function ratio(num, den,    a, b) {
    a = metric[num ":ns_per_op"]; b = metric[den ":ns_per_op"]
    if (a == "" || b == "" || b + 0 == 0) return ""
    return sprintf("%.2f", a / b)
}
function addderived(key, val) {
    if (val == "") return
    dkey[dn] = key; dval[dn] = val; dn++
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (!(name in seen)) { seen[name] = 1; order[n++] = name }
    line = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        key = jsonkey($(i + 1))
        metric[name ":" key] = $i
        line = line (line == "" ? "" : ", ") "\"" key "\": " $i
    }
    fields[name] = line
}
END {
    printf "{\n"
    printf "  \"issue\": %s,\n", issue
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"filter\": \"%s\",\n", filter
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {%s}%s\n", name, fields[name], (i < n - 1 ? "," : "")
    }
    printf "  }"

    # Derived before/after ratios, emitted only when both sides ran.
    dn = 0
    addderived("speedup_int8_kernel_over_fp64_192", ratio("MatMulTiledSerial", "QMatMulInt8Serial"))
    addderived("speedup_int8_kernel_over_fp64_serving", ratio("MatMulTiledServing", "QMatMulInt8Serving"))
    addderived("speedup_int8_kernel_over_fp64_fleet", ratio("MatMulTiledFleet", "QMatMulInt8Fleet"))
    addderived("speedup_int8_predict_over_fp64", ratio("ModelPredictDenseFP64", "ModelPredictDenseInt8"))
    fpb = metric["ModelPredictDenseFP64:weight_bytes"]
    qb = metric["ModelPredictDenseInt8:weight_bytes"]
    if (fpb != "" && qb != "" && qb + 0 != 0)
        addderived("weight_shrink_fp64_over_int8", sprintf("%.2f", fpb / qb))
    addderived("speedup_batched_over_serial_in_process", ratio("TrainBlackBoxSerial", "TrainBlackBoxBatched"))
    addderived("speedup_batched_over_serial_http", ratio("TrainBlackBoxSerialHTTP", "TrainBlackBoxBatchedHTTP"))
    addderived("speedup_batched_over_serial_remote_rtt_3ms", ratio("TrainBlackBoxSerialRemoteRTT", "TrainBlackBoxBatchedRemoteRTT"))
    # Screened serving overhead (PR 7). The enablement tax — a screening-
    # enabled server answering regular (opted-out) predict traffic over the
    # unscreened baseline — is the acceptance metric: 1.00 means free,
    # target < 1.15. The verdict ratio prices PredictScreened traffic: its
    # delta is the one extra fused model row per screened row (raw forward
    # cost; idle pool workers absorb it on multi-core servers), on top of
    # which the screening plumbing adds nothing measurable.
    addderived("screened_over_unscreened_overhead", ratio("ServerPredictScreenedOptOut", "ServerPredictUnscreened"))
    addderived("screening_verdict_over_unscreened", ratio("ServerPredictScreened", "ServerPredictUnscreened"))
    # Gateway node-count scaling (PR 8): aggregate QPS gain from sharding the
    # same 8-model zoo across 2 and 4 nodes behind one gateway, relative to
    # the 1-node floor. All nodes share this process and its kernel pool, so
    # these measure serving-stack scaling, not added compute.
    addderived("gateway_qps_2node_over_1node", ratio("GatewayPredict1Node", "GatewayPredict2Node"))
    addderived("gateway_qps_4node_over_1node", ratio("GatewayPredict1Node", "GatewayPredict4Node"))
    if (dn > 0) {
        printf ",\n  \"derived\": {\n"
        for (i = 0; i < dn; i++)
            printf "    \"%s\": %s%s\n", dkey[i], dval[i], (i < dn - 1 ? "," : "")
        printf "  }\n"
    } else {
        printf "\n"
    }
    printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
