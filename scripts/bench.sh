#!/usr/bin/env bash
# bench.sh — run the generation-batched CMA-ES evaluation hot-path
# benchmarks (PR 5) and emit a machine-readable BENCH_5.json capturing the
# serial-vs-batched before/after for the three oracle flavors: in-process,
# loopback HTTP, and simulated-RTT remote.
#
# Usage: scripts/bench.sh [benchtime] [output]
#   benchtime  go -benchtime value (default 10x; CI uses 1x as a smoke run)
#   output     JSON path (default BENCH_5.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
OUT="${2:-BENCH_5.json}"

raw=$(go test -run '^$' -bench 'BenchmarkTrainBlackBox' -benchtime="$BENCHTIME" -benchmem .)
echo "$raw"

echo "$raw" | awk -v benchtime="$BENCHTIME" -v goversion="$(go version | awk '{print $3}')" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns[name] = $3
    bytes[name] = $5
    allocs[name] = $7
    order[n++] = name
}
END {
    printf "{\n"
    printf "  \"issue\": 5,\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, ns[name], bytes[name], allocs[name], (i < n-1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup_batched_over_serial\": {\n"
    printf "    \"in_process\": %.2f,\n", ns["TrainBlackBoxSerial"] / ns["TrainBlackBoxBatched"]
    printf "    \"http\": %.2f,\n", ns["TrainBlackBoxSerialHTTP"] / ns["TrainBlackBoxBatchedHTTP"]
    printf "    \"remote_rtt_3ms\": %.2f\n", ns["TrainBlackBoxSerialRemoteRTT"] / ns["TrainBlackBoxBatchedRemoteRTT"]
    printf "  }\n"
    printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
