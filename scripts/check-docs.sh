#!/bin/sh
# check-docs.sh — docs-coverage gate for CI and local use.
#
# Fails if any internal/ package (or the root package) lacks a package-level
# doc comment ("// Package <name> ..." immediately above the package clause
# in at least one file), so `go doc ./...` stays a coherent API reference.
set -eu
cd "$(dirname "$0")/.."

fail=0
for dir in . internal/*/; do
	pkg=$(basename "$(cd "$dir" && pwd)")
	if [ "$dir" = "." ]; then
		pkg=$(sed -n 's/^module //p' go.mod)
	fi
	found=0
	for f in "$dir"/*.go; do
		[ -e "$f" ] || continue
		case "$f" in *_test.go) continue ;; esac
		# A doc comment's last line must directly precede the package clause.
		if awk -v pkg="$pkg" '
			/^\/\/ Package / && $3 == pkg { seen = 1; next }
			seen && /^\/\// { next }
			seen && $1 == "package" && $2 == pkg { ok = 1; exit }
			{ seen = 0 }
			END { exit !ok }
		' "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "missing package doc comment: $dir (package $pkg)" >&2
		fail=1
	fi
done
if [ "$fail" -ne 0 ]; then
	echo "docs coverage check FAILED" >&2
	exit 1
fi
echo "docs coverage OK: every package carries a package comment"
