package bprom_test

// One benchmark per table and figure of the paper's evaluation section.
// Each runs the corresponding experiment at the tiny scale and reports the
// headline quantity (average AUROC / accuracy / F1 where the table has one)
// as a custom benchmark metric. Regenerate everything with:
//
//	go test -bench=. -benchtime=1x -benchmem .
//
// EXPERIMENTS.md records small-scale runs of the same experiments.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"bprom/internal/data"
	"bprom/internal/exp"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/vp"
)

// runExperiment executes one registered experiment per benchmark iteration
// and reports the mean of the numeric cells in the given column (-1: the
// last column, which carries the AVG on the comparison tables).
func runExperiment(b *testing.B, id string, column int) {
	b.Helper()
	p := exp.ParamsFor(exp.Tiny)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		tab, err := exp.Run(ctx, id, p)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
		sum, n := 0.0, 0
		for _, row := range tab.Rows {
			col := column
			if col < 0 {
				col = len(row) - 1
			}
			if col >= len(row) {
				continue
			}
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				sum += v
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "mean_metric")
		}
	}
}

func BenchmarkTable01InputLevelCollapse(b *testing.B) { runExperiment(b, "table1", 3) }
func BenchmarkFigure03Subspace(b *testing.B)          { runExperiment(b, "figure3", 2) }
func BenchmarkTable02TargetClasses(b *testing.B)      { runExperiment(b, "table2", 1) }
func BenchmarkTable03TriggerSize(b *testing.B)        { runExperiment(b, "table3", 1) }
func BenchmarkTable04PoisonRate(b *testing.B)         { runExperiment(b, "table4", 1) }
func BenchmarkTable05MainAUROC(b *testing.B)          { runExperiment(b, "table5", -1) }
func BenchmarkTable06TinyImageNet(b *testing.B)       { runExperiment(b, "table6", -1) }
func BenchmarkTrainingTime(b *testing.B)              { runExperiment(b, "training-time", 0) }
func BenchmarkTable07ShadowCount(b *testing.B)        { runExperiment(b, "table7", 1) }
func BenchmarkTable08TriggerSizeAUROC(b *testing.B)   { runExperiment(b, "table8", 3) }
func BenchmarkTable09PoisonRateAUROC(b *testing.B)    { runExperiment(b, "table9", 3) }
func BenchmarkTable10CrossArch(b *testing.B)          { runExperiment(b, "table10", -1) }
func BenchmarkTable11LowPoison(b *testing.B)          { runExperiment(b, "table11", 1) }
func BenchmarkTable12CleanLabel(b *testing.B)         { runExperiment(b, "table12", 1) }
func BenchmarkTable13AttackConfigs(b *testing.B)      { runExperiment(b, "table13", 0) }
func BenchmarkTable14ACCASRResNet(b *testing.B)       { runExperiment(b, "table14", 2) }
func BenchmarkTable15ACCASRMobileNet(b *testing.B)    { runExperiment(b, "table15", 2) }
func BenchmarkTable16F1ResNet(b *testing.B)           { runExperiment(b, "table16", -1) }
func BenchmarkTable17AUROCMobileNet(b *testing.B)     { runExperiment(b, "table17", -1) }
func BenchmarkTable18F1MobileNet(b *testing.B)        { runExperiment(b, "table18", -1) }
func BenchmarkTable19SVHNFromGTSRB(b *testing.B)      { runExperiment(b, "table19", -1) }
func BenchmarkTable20SVHNFromCIFAR(b *testing.B)      { runExperiment(b, "table20", -1) }
func BenchmarkTable21CIFAR100(b *testing.B)           { runExperiment(b, "table21", -1) }
func BenchmarkTable22FeatureBackdoors(b *testing.B)   { runExperiment(b, "table22", 2) }
func BenchmarkTable23ReservedSize(b *testing.B)       { runExperiment(b, "table23", -1) }
func BenchmarkTable24MobileViT(b *testing.B)          { runExperiment(b, "table24", -1) }
func BenchmarkTable25Swin(b *testing.B)               { runExperiment(b, "table25", -1) }
func BenchmarkTable26ImageNet(b *testing.B)           { runExperiment(b, "table26", -1) }
func BenchmarkFigure05MetaPCA(b *testing.B)           { runExperiment(b, "figure5", 1) }

// --- Serving-path throughput -------------------------------------------------
//
// These benchmarks make the inference de-serialization measurable across
// PRs: with the stateless forward pass, the parallel variants should scale
// near-linearly with GOMAXPROCS, where the old mutex-guarded path pinned
// them to single-flight throughput. Compare:
//
//	go test -bench 'Predict(Serial|Concurrent|Parallel)' -benchtime=2s .

func benchModel(b *testing.B) *nn.Model {
	b.Helper()
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchResNetLite, C: 3, H: 12, W: 12, NumClasses: 10, Hidden: 32,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchBatch(m *nn.Model, seed uint64) *tensor.Tensor {
	x := tensor.New(8, m.InputDim)
	rng.New(seed).Uniform(x.Data, 0, 1)
	return x
}

// BenchmarkModelPredictSerial is the single-flight baseline for the
// concurrent variant below.
func BenchmarkModelPredictSerial(b *testing.B) {
	m := benchModel(b)
	x := benchBatch(m, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// BenchmarkModelPredictConcurrent hammers one frozen model from all procs;
// the stateless inference path makes this embarrassingly parallel.
func BenchmarkModelPredictConcurrent(b *testing.B) {
	m := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := benchBatch(m, 3)
		for pb.Next() {
			m.Predict(x)
		}
	})
}

// BenchmarkServerPredictParallel measures end-to-end throughput through the
// full HTTP stack: JSON, the request queue, the micro-batcher, and the
// concurrent forward passes.
func BenchmarkServerPredictParallel(b *testing.B) {
	m := benchModel(b)
	s := mlaas.NewServer(m, mlaas.ServerConfig{Name: "bench", MaxBatch: 256})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c, err := mlaas.Dial(context.Background(), srv.URL, mlaas.ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := benchBatch(m, 4)
		for pb.Next() {
			if _, err := c.Predict(ctx, x); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- Kernel regression guard ---------------------------------------------------
//
// The tiled parallel kernels carry every downstream number, so their
// before/after story stays measurable here: BenchmarkMatMulNaive is the
// untouched triple-loop baseline, BenchmarkMatMulTiledSerial isolates the
// cache-blocking win on one worker, and BenchmarkMatMulTiledParallel adds
// the shared pool (expected ≥2x over the naive baseline on a multi-core
// runner; on one core the tiling alone must not regress). CI runs these at
// -benchtime=1x so they cannot silently rot. Reproduce locally with:
//
//	go test -bench 'MatMulNaive|MatMulTiled|ConvIm2Col' -benchtime=2s .

const benchMatDim = 192

func benchMatPair(b *testing.B) (dst, x, y *tensor.Tensor) {
	b.Helper()
	r := rng.New(12)
	x, y = tensor.New(benchMatDim, benchMatDim), tensor.New(benchMatDim, benchMatDim)
	r.Gaussian(x.Data, 0, 1)
	r.Gaussian(y.Data, 0, 1)
	return tensor.New(benchMatDim, benchMatDim), x, y
}

// BenchmarkMatMulNaive is the serial naive baseline the acceptance numbers
// are measured against.
func BenchmarkMatMulNaive(b *testing.B) {
	dst, x, y := benchMatPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.NaiveMatMulInto(dst, x, y)
	}
}

// BenchmarkMatMulTiledSerial pins the shared pool to one worker: the delta
// vs MatMulNaive is pure cache blocking.
func BenchmarkMatMulTiledSerial(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	dst, x, y := benchMatPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

// BenchmarkMatMulTiledParallel uses the default shared pool (GOMAXPROCS
// workers): the delta vs MatMulTiledSerial is the pool's scaling.
func BenchmarkMatMulTiledParallel(b *testing.B) {
	tensor.SetWorkers(0)
	dst, x, y := benchMatPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

// BenchmarkConvIm2Col measures the full conv path (im2col + matmul +
// transpose) through a Conv2D layer on a batch, the serving path's hottest
// layer type.
func BenchmarkConvIm2Col(b *testing.B) {
	d := tensor.ConvDims{InC: 3, InH: 32, InW: 32, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := nn.NewConv2D(d, rng.New(4))
	x := tensor.New(8, 3, 32, 32)
	rng.New(5).Uniform(x.Data, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Infer(x)
	}
}

// --- Quantized int8 kernels (PR 6) --------------------------------------------
//
// The before/after pair for the int8 serving path: BenchmarkMatMulTiledSerial
// above is the float64 single-core baseline on the same 192² shape;
// BenchmarkQMatMulInt8Serial runs the per-channel quantized kernel, including
// the on-the-fly activation quantization it performs every call. The model-
// level pair (ModelPredictDenseFP64/Int8) measures the same trade through a
// matmul-bound dense stack and reports resident weight bytes.
//
// Expect the model-level speedup to undershoot the kernel-level one: past the
// first layer the activations are post-ReLU, so roughly half of them are
// exactly zero and the fp kernel's zero-skip (matMulRange) drops those panels
// entirely, while the int8 kernel always runs dense (a quantized zero is the
// zero-point byte, indistinguishable mid-kernel). On dense operands — the
// kernel pair here, and any non-ReLU activation pattern — the full gap shows.
// scripts/bench.sh records all of these in BENCH_6.json. Reproduce locally
// with:
//
//	go test -bench 'QMatMul|ModelPredictDense' -benchtime=3s .

// BenchmarkQMatMulInt8Serial pins the pool to one worker so the delta vs
// MatMulTiledSerial is pure int8 arithmetic, not parallelism.
func BenchmarkQMatMulInt8Serial(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	dst, x, y := benchMatPair(b)
	q := tensor.QuantizePerCol(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.QMatMulInto(dst, x, q)
	}
}

// benchServingMatPair is the serving path's dominant matmul shape: a
// predict-block of activation rows against a 512-wide Dense weight matrix
// (the hidden layers of the dense stack below). The 192³ pair above keeps
// the historical tier-1 shape; this one is what `-quantize` actually buys
// per request.
func benchServingMatPair(b *testing.B) (dst, x, y *tensor.Tensor) {
	b.Helper()
	r := rng.New(12)
	x, y = tensor.New(64, 512), tensor.New(512, 512)
	r.Gaussian(x.Data, 0, 1)
	r.Gaussian(y.Data, 0, 1)
	return tensor.New(64, 512), x, y
}

// BenchmarkMatMulTiledServing is the fp64 single-core baseline at the
// serving shape.
func BenchmarkMatMulTiledServing(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	dst, x, y := benchServingMatPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

// BenchmarkQMatMulInt8Serving runs the quantized kernel at the serving
// shape (target: ≥2x BenchmarkMatMulTiledServing on one core).
func BenchmarkQMatMulInt8Serving(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	dst, x, y := benchServingMatPair(b)
	q := tensor.QuantizePerCol(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.QMatMulInto(dst, x, q)
	}
}

// benchFleetWeights builds nw independent 512² weight matrices, simulating a
// registry hot-set where consecutive predicts hit different models so no
// single weight matrix stays cache-resident between calls. This is the
// condition `-quantize` targets: the fp64 fleet (nw × 2 MiB) streams from
// memory every call, while the int8 fleet (nw × ~0.6 MiB) largely stays in
// cache — on top of the int8 arithmetic advantage the single-matrix pair
// above isolates.
const benchFleetModels = 8

func benchFleetWeights(b *testing.B) (dst, x *tensor.Tensor, ys []*tensor.Tensor) {
	b.Helper()
	r := rng.New(12)
	x = tensor.New(64, 512)
	r.Gaussian(x.Data, 0, 1)
	for i := 0; i < benchFleetModels; i++ {
		y := tensor.New(512, 512)
		r.Gaussian(y.Data, 0, 1)
		ys = append(ys, y)
	}
	return tensor.New(64, 512), x, ys
}

// BenchmarkMatMulTiledFleet is the fp64 baseline under hot-set rotation.
func BenchmarkMatMulTiledFleet(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	dst, x, ys := benchFleetWeights(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, ys[i%benchFleetModels])
	}
}

// BenchmarkQMatMulInt8Fleet rotates the same hot-set through the quantized
// kernel (target: ≥2x BenchmarkMatMulTiledFleet on one core).
func BenchmarkQMatMulInt8Fleet(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	dst, x, ys := benchFleetWeights(b)
	qs := make([]*tensor.QTensor, benchFleetModels)
	for i, y := range ys {
		qs[i] = tensor.QuantizePerCol(y)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.QMatMulInto(dst, x, qs[i%benchFleetModels])
	}
}

// benchDenseModel is a matmul-bound dense stack (256→512→512→10): wide
// enough that the Dense kernels dominate and the quantized path's speedup
// is visible at the Predict level, not just per kernel.
func benchDenseModel(b *testing.B) *nn.Model {
	b.Helper()
	r := rng.New(6)
	m := &nn.Model{
		Arch:       nn.ArchConvLite,
		InputDim:   256,
		NumClasses: 10,
		Layers: []nn.Layer{
			nn.NewDense(256, 512, r),
			&nn.ReLU{},
			nn.NewDense(512, 512, r),
			&nn.ReLU{},
			nn.NewDense(512, 10, r),
		},
	}
	if err := m.Validate(); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchModelPredict(b *testing.B, m *nn.Model) {
	b.Helper()
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	x := tensor.New(64, m.InputDim)
	rng.New(7).Uniform(x.Data, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
	b.ReportMetric(float64(m.WeightBytes()), "weight_bytes")
}

// BenchmarkModelPredictDenseFP64 is the single-core fp baseline for the
// quantized variant below; weight_bytes reports the resident footprint.
func BenchmarkModelPredictDenseFP64(b *testing.B) {
	benchModelPredict(b, benchDenseModel(b))
}

// BenchmarkModelPredictDenseInt8 serves the same stack through the int8
// path (target: ≥2x the fp64 variant, ~4x+ smaller weight_bytes).
func BenchmarkModelPredictDenseInt8(b *testing.B) {
	m := benchDenseModel(b)
	m.Quantize(0)
	benchModelPredict(b, m)
}

// --- Generation-batched CMA-ES evaluation ------------------------------------
//
// The before/after pair for PR 5's tentpole: TrainBlackBox with the legacy
// per-candidate objective (one oracle call per CMA-ES candidate, re-resizing
// the mini-batch every evaluation) versus the generation-batched evaluator
// (candidate-invariant resize cache + one fused oracle call per generation).
// Both paths are bit-identical in output — the delta is pure evaluation-
// pipeline overhead. The HTTP variants add the wire: serial sends λ narrow
// requests per generation, batched sends one wide call that the client chunks
// into parallel full-width requests. scripts/bench.sh records all four in
// BENCH_5.json. Reproduce locally with:
//
//	go test -bench 'TrainBlackBox' -benchtime=3x .

func benchPromptWorkload(b *testing.B) (*nn.Model, *data.Dataset) {
	b.Helper()
	m := benchModel(b) // 3×12×12 canvas, 10 classes
	tgt := data.NewGenerator(data.MustSpec(data.STL10), 7).Generate(6, rng.New(8))
	return m, tgt
}

func benchTrainBlackBox(b *testing.B, o oracle.Oracle, src data.Shape, tgt *data.Dataset, serial bool) {
	b.Helper()
	cfg := vp.BlackBoxConfig{Iterations: 4, SerialEval: serial}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := vp.NewPrompt(src, tgt.Shape, 0.83)
		if err != nil {
			b.Fatal(err)
		}
		if err := vp.TrainBlackBox(ctx, o, p, tgt, cfg, rng.New(9)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainBlackBoxSerial is the legacy per-candidate baseline against
// an in-process oracle.
func BenchmarkTrainBlackBoxSerial(b *testing.B) {
	m, tgt := benchPromptWorkload(b)
	src := data.Shape{C: 3, H: 12, W: 12}
	benchTrainBlackBox(b, oracle.NewModelOracle(m), src, tgt, true)
}

// BenchmarkTrainBlackBoxBatched is the generation-batched path against the
// same in-process oracle. On a single core both paths are bound by the
// identical model flops, so the delta is the evaluation-pipeline overhead
// the batching removes (resizes, canvas allocations — see the allocs/op
// column); the ≥2× wins appear where the fused call changes what the
// backend can do: multi-core hosts parallelize the full-width batches
// across the worker pool, and the RemoteRTT pair below shows the λ→1
// round-trip collapse that dominates real remote audits.
func BenchmarkTrainBlackBoxBatched(b *testing.B) {
	m, tgt := benchPromptWorkload(b)
	src := data.Shape{C: 3, H: 12, W: 12}
	benchTrainBlackBox(b, oracle.NewModelOracle(m), src, tgt, false)
}

func benchHTTPOracle(b *testing.B, m *nn.Model) *mlaas.Client {
	b.Helper()
	s := mlaas.NewServer(m, mlaas.ServerConfig{Name: "bench-vp", MaxBatch: 128})
	b.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	b.Cleanup(srv.Close)
	c, err := mlaas.Dial(context.Background(), srv.URL, mlaas.ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTrainBlackBoxSerialHTTP audits over the wire with the legacy
// path: λ narrow sequential requests per generation.
func BenchmarkTrainBlackBoxSerialHTTP(b *testing.B) {
	m, tgt := benchPromptWorkload(b)
	src := data.Shape{C: 3, H: 12, W: 12}
	benchTrainBlackBox(b, benchHTTPOracle(b, m), src, tgt, true)
}

// BenchmarkTrainBlackBoxBatchedHTTP audits over the wire with one fused
// call per generation, chunked by the client into parallel full-width
// requests for the server's micro-batch engine.
func BenchmarkTrainBlackBoxBatchedHTTP(b *testing.B) {
	m, tgt := benchPromptWorkload(b)
	src := data.Shape{C: 3, H: 12, W: 12}
	benchTrainBlackBox(b, benchHTTPOracle(b, m), src, tgt, false)
}

// rttOracle simulates a genuinely remote endpoint: every Predict call pays
// a fixed round-trip latency before the in-process forward pass. Loopback
// httptest hides exactly this cost, yet it dominates real MLaaS audits (the
// paper's query-budget setting): the serial path pays it λ times per
// generation, the fused path once. The 3ms default is a conservative
// same-region RTT.
type rttOracle struct {
	oracle.Oracle
	rtt time.Duration
}

func (o *rttOracle) Predict(ctx context.Context, x *tensor.Tensor) (*tensor.Tensor, error) {
	time.Sleep(o.rtt)
	return o.Oracle.Predict(ctx, x)
}

// BenchmarkTrainBlackBoxSerialRemoteRTT: legacy path against a 3ms-RTT
// oracle — λ round-trips per generation.
func BenchmarkTrainBlackBoxSerialRemoteRTT(b *testing.B) {
	m, tgt := benchPromptWorkload(b)
	src := data.Shape{C: 3, H: 12, W: 12}
	benchTrainBlackBox(b, &rttOracle{Oracle: oracle.NewModelOracle(m), rtt: 3 * time.Millisecond}, src, tgt, true)
}

// BenchmarkTrainBlackBoxBatchedRemoteRTT: generation-batched path against
// the same 3ms-RTT oracle — one round-trip per generation.
func BenchmarkTrainBlackBoxBatchedRemoteRTT(b *testing.B) {
	m, tgt := benchPromptWorkload(b)
	src := data.Shape{C: 3, H: 12, W: 12}
	benchTrainBlackBox(b, &rttOracle{Oracle: oracle.NewModelOracle(m), rtt: 3 * time.Millisecond}, src, tgt, false)
}

// --- Inline screening serving overhead (PR 7) ---------------------------------
//
// Three-way decomposition of what inline screening costs the serving plane,
// on the same HTTP stack, micro-batcher, and model as
// BenchmarkServerPredictParallel:
//
//   - Unscreened: baseline server, no screener configured.
//   - ScreenedOptOut: screener configured, but the traffic is plain Predict
//     (which opts out on the wire). This is the enablement tax — the
//     < 15% QPS acceptance target — and it should be ~zero: the engine
//     appends no prompted rows for opted-out requests, and the responses
//     stay bit-identical to the unscreened server's (parity-tested).
//   - Screened: every request asks for verdicts via PredictScreened. Each
//     row's prompted view is fused into the SAME batched Predict tick as
//     the plain rows — one forward per tick, not a second request path —
//     so the marginal cost is one extra model row per screened row (compare
//     the delta against BenchmarkModelPredictSerial: the screening plumbing
//     itself adds nothing measurable). On a multi-core server the extra
//     rows ride idle kernel-pool workers; on a single-core runner they
//     serialize and the delta is the raw forward cost.
//
// scripts/bench.sh records all three (and the derived ratios) in
// BENCH_7.json. Reproduce locally with:
//
//	go test -bench 'ServerPredict(Screened|Unscreened)' -benchtime=2s .

// benchScreener builds a screener on the benchModel canvas (3×12×12) with a
// deterministic trained-looking border.
func benchScreener(b *testing.B) *vp.Screener {
	b.Helper()
	p, err := vp.NewPrompt(data.Shape{C: 3, H: 12, W: 12}, data.Shape{C: 3, H: 24, W: 24}, 0.67)
	if err != nil {
		b.Fatal(err)
	}
	rng.New(77).Uniform(p.Theta, 0, 1)
	sc, err := vp.NewScreener(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

func benchServerPredict(b *testing.B, screener *vp.Screener, verdicts bool) {
	m := benchModel(b)
	s := mlaas.NewServer(m, mlaas.ServerConfig{Name: "bench", MaxBatch: 256, Screener: screener})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c, err := mlaas.Dial(context.Background(), srv.URL, mlaas.ClientConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := benchBatch(m, 4)
		for pb.Next() {
			if !verdicts {
				if _, err := c.Predict(ctx, x); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			if _, scr, err := c.PredictScreened(ctx, x); err != nil || len(scr) != x.Dim(0) {
				b.Errorf("screened predict: %d entries, err %v", len(scr), err)
				return
			}
		}
	})
}

// BenchmarkServerPredictUnscreened is the serving baseline without a
// screener configured.
func BenchmarkServerPredictUnscreened(b *testing.B) {
	benchServerPredict(b, nil, false)
}

// BenchmarkServerPredictScreenedOptOut serves plain Predict traffic through
// a screening-enabled server: the enablement tax regular clients pay when
// the operator turns -screen on (acceptance target < 15%, expected ~0).
func BenchmarkServerPredictScreenedOptOut(b *testing.B) {
	benchServerPredict(b, benchScreener(b), false)
}

// BenchmarkServerPredictScreened screens every request inline (annotate
// policy); the delta vs the unscreened baseline is the fused prompted-view
// rows plus the screening block on the wire.
func BenchmarkServerPredictScreened(b *testing.B) {
	benchServerPredict(b, benchScreener(b), true)
}

// --- Multi-node gateway scaling (PR 8) ------------------------------------------
//
// Aggregate predict throughput through mlaas-gateway as the fleet grows:
// the same 8-model zoo served by 1, 2, and 4 registry nodes behind one
// gateway, hammered from all procs with requests spread round-robin across
// the models. Placement shards the zoo across nodes (Replication 1), so
// added nodes split the per-model load. All nodes live in this one test
// process and share the kernel worker pool, so the scaling measured here
// is the serving stack's (routing, HTTP, JSON, micro-batchers) — separate
// processes would add kernel-level parallelism on top. scripts/bench.sh
// records the 1/2/4-node series in BENCH_8.json. Reproduce locally with:
//
//	go test -bench 'GatewayPredict[0-9]' -benchtime=2s .

const benchGatewayModels = 8

// benchGatewayZoo saves benchGatewayModels random-weight checkpoints of the
// benchModel shape into one registry directory shared by every node.
func benchGatewayZoo(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	for i := 0; i < benchGatewayModels; i++ {
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchResNetLite, C: 3, H: 12, W: 12, NumClasses: 10, Hidden: 32,
		}, rng.New(uint64(20+i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.SaveFile(filepath.Join(dir, fmt.Sprintf("m%d.bin", i))); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

func benchGatewayPredict(b *testing.B, nodeCount int) {
	zoo := benchGatewayZoo(b)
	ctx := context.Background()
	nodes := make([]string, nodeCount)
	for i := range nodes {
		reg, err := mlaas.OpenRegistry(zoo, mlaas.RegistryConfig{MaxLoaded: benchGatewayModels})
		if err != nil {
			b.Fatal(err)
		}
		s := mlaas.NewRegistryServer(reg)
		b.Cleanup(s.Close)
		srv := httptest.NewServer(s.Handler())
		b.Cleanup(srv.Close)
		nodes[i] = srv.URL
	}
	g, err := mlaas.NewGateway(ctx, mlaas.GatewayConfig{Nodes: nodes})
	if err != nil {
		b.Fatal(err)
	}
	gs := mlaas.NewGatewayServer(g)
	b.Cleanup(gs.Close)
	gwSrv := httptest.NewServer(gs.Handler())
	b.Cleanup(gwSrv.Close)

	clients := make([]*mlaas.Client, benchGatewayModels)
	for i := range clients {
		c, err := mlaas.DialModel(ctx, gwSrv.URL, fmt.Sprintf("m%d", i), mlaas.ClientConfig{})
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
	}
	x := tensor.New(8, 3*12*12)
	rng.New(30).Uniform(x.Data, 0, 1)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c := clients[next.Add(1)%benchGatewayModels]
			if _, err := c.Predict(ctx, x); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkGatewayPredict1Node is the single-node floor: every request pays
// the gateway hop but lands on the same backend.
func BenchmarkGatewayPredict1Node(b *testing.B) { benchGatewayPredict(b, 1) }

// BenchmarkGatewayPredict2Node shards the zoo across two nodes.
func BenchmarkGatewayPredict2Node(b *testing.B) { benchGatewayPredict(b, 2) }

// BenchmarkGatewayPredict4Node shards the zoo across four nodes.
func BenchmarkGatewayPredict4Node(b *testing.B) { benchGatewayPredict(b, 4) }

// Ablations and the limitation experiment (DESIGN.md extensions).
func BenchmarkLimitationAllToAll(b *testing.B) { runExperiment(b, "limitation-alltoall", 1) }
func BenchmarkAblationOptimizer(b *testing.B)  { runExperiment(b, "ablation-optimizer", 1) }
func BenchmarkAblationPromptSize(b *testing.B) { runExperiment(b, "ablation-promptsize", 2) }
func BenchmarkAblationQueryCount(b *testing.B) { runExperiment(b, "ablation-querycount", 1) }
