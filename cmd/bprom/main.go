// Command bprom trains a BPROM detector and inspects suspicious models —
// a model file, a remote MLaaS endpoint (black-box over HTTP), or, in
// fleet mode, every model a multi-model endpoint hosts.
//
// Usage:
//
//	bprom -model suspicious.bin
//	bprom -url http://127.0.0.1:8080
//	bprom -url http://127.0.0.1:8080 -fleet        # audit every hosted model
//	bprom -model m.bin -source cifar10 -external stl10 -shadows 8 -scale small
//
// Fleet mode discovers the endpoint's models via /v1/models, trains ONE
// detector, and then prompts every compatible model concurrently, emitting
// a per-model clean/backdoored verdict table — the paper's defender
// auditing an entire MLaaS platform rather than a single upload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/exp"
	"bprom/internal/meta"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bprom:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath = flag.String("model", "", "suspicious model file")
		url       = flag.String("url", "", "suspicious MLaaS endpoint base URL")
		fleet     = flag.Bool("fleet", false, "audit every model the endpoint hosts (requires -url)")
		parallel  = flag.Int("parallel", 4, "concurrent model audits in fleet mode")
		source    = flag.String("source", data.CIFAR10, "suspicious model's training domain")
		external  = flag.String("external", data.STL10, "external clean dataset DT")
		scale     = flag.String("scale", "small", "detector scale: tiny | small | full")
		shadows   = flag.Int("shadows", 0, "override shadow count per class label (clean+backdoor)")
		seed      = flag.Uint64("seed", 42, "detector seed")
	)
	flag.Parse()
	if (*modelPath == "") == (*url == "") {
		return fmt.Errorf("pass exactly one of -model or -url")
	}
	if *fleet && *url == "" {
		return fmt.Errorf("-fleet requires -url")
	}

	ctx := context.Background()
	p := exp.ParamsFor(exp.Scale(*scale))
	p.Seed = *seed
	if *shadows > 0 {
		p.ShadowClean, p.ShadowBackdoor = *shadows, *shadows
	}
	srcSpec, ok := data.SpecFor(*source)
	if !ok {
		return fmt.Errorf("unknown source dataset %q", *source)
	}
	extSpec, ok := data.SpecFor(*external)
	if !ok {
		return fmt.Errorf("unknown external dataset %q", *external)
	}

	if *fleet {
		return auditFleet(ctx, *url, p, *scale, srcSpec, extSpec, *parallel, *external)
	}

	var sus oracle.Oracle
	if *modelPath != "" {
		m, err := nn.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		sus = oracle.NewModelOracle(m)
	} else {
		c, err := mlaas.Dial(ctx, *url, mlaas.ClientConfig{})
		if err != nil {
			return err
		}
		sus = c
	}
	if sus.NumClasses() != srcSpec.Classes || sus.InputDim() != srcSpec.Shape.Dim() {
		return fmt.Errorf("suspicious model reports %d classes / dim %d; %s expects %d / %d",
			sus.NumClasses(), sus.InputDim(), *source, srcSpec.Classes, srcSpec.Shape.Dim())
	}

	det, err := trainDetector(ctx, p, *scale, srcSpec, extSpec)
	if err != nil {
		return err
	}
	v, err := det.Inspect(ctx, sus, 0)
	if err != nil {
		return err
	}
	verdict := "CLEAN"
	if v.Backdoored {
		verdict = "BACKDOORED"
	}
	fmt.Printf("verdict:           %s\n", verdict)
	fmt.Printf("backdoor score:    %.3f (threshold 0.5)\n", v.Score)
	fmt.Printf("prompted accuracy: %.3f on %s (low accuracy = class-subspace inconsistency)\n", v.PromptedAcc, *external)
	fmt.Printf("oracle queries:    %d samples\n", v.Queries)
	return nil
}

// trainDetector runs BPROM's Algorithm 1 (shadow models + visual prompts +
// meta-classifier) once; the resulting detector is reusable across any
// number of suspicious models.
func trainDetector(ctx context.Context, p exp.Params, scale string, srcSpec, extSpec data.Spec) (*bprom.Detector, error) {
	r := rng.New(p.Seed)
	srcGen := data.NewGenerator(srcSpec, p.Seed^0x5151)
	_, srcTest := srcGen.GenerateSplit(1, p.SrcTest, r.Split("src"))
	tgtGen := data.NewGenerator(extSpec, p.Seed^0xA7A7)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(p.TgtTrain, p.TgtTest, r.Split("tgt"))

	fmt.Printf("training detector (scale %s: %d+%d shadows) ...\n", scale, p.ShadowClean, p.ShadowBackdoor)
	start := time.Now()
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(p.ReservedFrac, r.Split("reserve")),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      p.ShadowClean,
		NumBackdoor:   p.ShadowBackdoor,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: p.Hidden},
		ShadowTrain:   trainer.Config{Epochs: p.Epochs},
		PromptFrac:    p.PromptFrac,
		WhiteBox:      vp.WhiteBoxConfig{Epochs: p.WBEpochs},
		BlackBox:      vp.BlackBoxConfig{Iterations: p.CMAIters},
		QuerySamples:  p.QuerySamples,
		Forest:        meta.TrainConfig{Trees: p.ForestTrees},
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("detector ready in %s\n", time.Since(start).Round(time.Millisecond))
	return det, nil
}

// fleetResult is one audited model's outcome.
type fleetResult struct {
	info    mlaas.ModelInfo
	verdict bprom.Verdict
	err     error
}

// auditFleet discovers every model on the endpoint, trains one detector,
// and prompts all compatible models concurrently (bounded by parallel).
func auditFleet(ctx context.Context, url string, p exp.Params, scale string, srcSpec, extSpec data.Spec, parallel int, external string) error {
	list, err := mlaas.ListModels(ctx, url, mlaas.ClientConfig{})
	if err != nil {
		return err
	}
	var targets []mlaas.ModelInfo
	for _, mi := range list.Models {
		if mi.Classes != srcSpec.Classes || mi.InputDim != srcSpec.Shape.Dim() {
			fmt.Printf("skipping %s: %d classes / dim %d does not match source domain (%d / %d)\n",
				mi.ID, mi.Classes, mi.InputDim, srcSpec.Classes, srcSpec.Shape.Dim())
			continue
		}
		targets = append(targets, mi)
	}
	if len(targets) == 0 {
		return fmt.Errorf("endpoint hosts %d models, none match the source domain", len(list.Models))
	}
	fmt.Printf("endpoint hosts %d models, auditing %d ...\n", len(list.Models), len(targets))

	det, err := trainDetector(ctx, p, scale, srcSpec, extSpec)
	if err != nil {
		return err
	}

	if parallel < 1 {
		parallel = 1
	}
	fmt.Printf("prompting %d models black-box (%d in parallel) ...\n", len(targets), parallel)
	start := time.Now()
	results := make([]fleetResult, len(targets))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, mi := range targets {
		wg.Add(1)
		go func(i int, mi mlaas.ModelInfo) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i].info = mi
			c, err := mlaas.DialModel(ctx, url, mi.ID, mlaas.ClientConfig{})
			if err != nil {
				results[i].err = err
				return
			}
			v, err := det.Inspect(ctx, c, i)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].verdict = v
		}(i, mi)
	}
	wg.Wait()

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\tverdict\tscore\tprompted-acc\tqueries")
	flagged, failed := 0, 0
	for _, res := range results {
		if res.err != nil {
			failed++
			fmt.Fprintf(w, "%s\tERROR\t-\t-\t-\n", res.info.ID)
			continue
		}
		verdict := "CLEAN"
		if res.verdict.Backdoored {
			verdict = "BACKDOORED"
			flagged++
		}
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%d\n",
			res.info.ID, verdict, res.verdict.Score, res.verdict.PromptedAcc, res.verdict.Queries)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nfleet audit done in %s: %d/%d flagged BACKDOORED (prompted on %s)\n",
		time.Since(start).Round(time.Millisecond), flagged, len(targets)-failed, external)
	for _, res := range results {
		if res.err != nil {
			fmt.Printf("  %s failed: %v\n", res.info.ID, res.err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d audits failed", failed, len(targets))
	}
	return nil
}
