// Command bprom trains a BPROM detector and inspects a suspicious model —
// either a model file or a remote MLaaS endpoint (black-box over HTTP).
//
// Usage:
//
//	bprom -model suspicious.bin
//	bprom -url http://127.0.0.1:8080
//	bprom -model m.bin -source cifar10 -external stl10 -shadows 8 -scale small
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/exp"
	"bprom/internal/meta"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bprom:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath = flag.String("model", "", "suspicious model file")
		url       = flag.String("url", "", "suspicious MLaaS endpoint base URL")
		source    = flag.String("source", data.CIFAR10, "suspicious model's training domain")
		external  = flag.String("external", data.STL10, "external clean dataset DT")
		scale     = flag.String("scale", "small", "detector scale: tiny | small | full")
		shadows   = flag.Int("shadows", 0, "override shadow count per class label (clean+backdoor)")
		seed      = flag.Uint64("seed", 42, "detector seed")
	)
	flag.Parse()
	if (*modelPath == "") == (*url == "") {
		return fmt.Errorf("pass exactly one of -model or -url")
	}

	ctx := context.Background()
	var sus oracle.Oracle
	if *modelPath != "" {
		m, err := nn.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		sus = oracle.NewModelOracle(m)
	} else {
		c, err := mlaas.Dial(ctx, *url, mlaas.ClientConfig{})
		if err != nil {
			return err
		}
		sus = c
	}

	p := exp.ParamsFor(exp.Scale(*scale))
	p.Seed = *seed
	if *shadows > 0 {
		p.ShadowClean, p.ShadowBackdoor = *shadows, *shadows
	}
	srcSpec, ok := data.SpecFor(*source)
	if !ok {
		return fmt.Errorf("unknown source dataset %q", *source)
	}
	extSpec, ok := data.SpecFor(*external)
	if !ok {
		return fmt.Errorf("unknown external dataset %q", *external)
	}
	if sus.NumClasses() != srcSpec.Classes || sus.InputDim() != srcSpec.Shape.Dim() {
		return fmt.Errorf("suspicious model reports %d classes / dim %d; %s expects %d / %d",
			sus.NumClasses(), sus.InputDim(), *source, srcSpec.Classes, srcSpec.Shape.Dim())
	}

	r := rng.New(p.Seed)
	srcGen := data.NewGenerator(srcSpec, p.Seed^0x5151)
	_, srcTest := srcGen.GenerateSplit(1, p.SrcTest, r.Split("src"))
	tgtGen := data.NewGenerator(extSpec, p.Seed^0xA7A7)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(p.TgtTrain, p.TgtTest, r.Split("tgt"))

	fmt.Printf("training detector (scale %s: %d+%d shadows) ...\n", *scale, p.ShadowClean, p.ShadowBackdoor)
	start := time.Now()
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(p.ReservedFrac, r.Split("reserve")),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      p.ShadowClean,
		NumBackdoor:   p.ShadowBackdoor,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: p.Hidden},
		ShadowTrain:   trainer.Config{Epochs: p.Epochs},
		PromptFrac:    p.PromptFrac,
		WhiteBox:      vp.WhiteBoxConfig{Epochs: p.WBEpochs},
		BlackBox:      vp.BlackBoxConfig{Iterations: p.CMAIters},
		QuerySamples:  p.QuerySamples,
		Forest:        meta.TrainConfig{Trees: p.ForestTrees},
		Seed:          p.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("detector ready in %s; prompting suspicious model (black-box) ...\n",
		time.Since(start).Round(time.Millisecond))

	v, err := det.Inspect(ctx, sus, 0)
	if err != nil {
		return err
	}
	verdict := "CLEAN"
	if v.Backdoored {
		verdict = "BACKDOORED"
	}
	fmt.Printf("verdict:           %s\n", verdict)
	fmt.Printf("backdoor score:    %.3f (threshold 0.5)\n", v.Score)
	fmt.Printf("prompted accuracy: %.3f on %s (low accuracy = class-subspace inconsistency)\n", v.PromptedAcc, *external)
	fmt.Printf("oracle queries:    %d samples\n", v.Queries)
	return nil
}
