// Command bprom is the defender's CLI, split into the paper's two phases:
//
//	bprom train -out detector.bpd            # train once (offline)
//	bprom audit -detector detector.bpd ...   # audit many (online)
//
// train runs Algorithm 1 (shadow models + visual prompts + random-forest
// meta-classifier) and persists the result as a versioned .bpd detector
// artifact. audit loads such an artifact — no retraining — and inspects a
// suspicious model: a local checkpoint file, a remote MLaaS endpoint
// (black-box over HTTP), or, in fleet mode, every model a multi-model
// endpoint hosts by submitting asynchronous SERVER-SIDE audit jobs and
// rendering the verdict table from the server's results.
//
// Usage:
//
//	bprom train -out detector.bpd [-source cifar10] [-external stl10] [-scale small] [-shadows N] [-seed 42]
//	bprom audit -detector detector.bpd -model suspicious.bin
//	bprom audit -detector detector.bpd -url http://127.0.0.1:8080
//	bprom audit -url http://127.0.0.1:8080 -fleet
//
// Fleet mode needs no local detector: the server audits with the artifact
// it was started with (mlaas-server -detector), so the probe traffic never
// crosses the wire and any number of defender CLIs share one detector.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"text/tabwriter"
	"time"

	"bprom/internal/audit"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/exp"
	"bprom/internal/meta"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/oracle"
	"bprom/internal/rng"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bprom:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usageError()
	}
	switch args[0] {
	case "train":
		return runTrain(args[1:])
	case "audit":
		return runAudit(args[1:])
	case "-h", "-help", "--help", "help":
		_ = usageError()
		return nil
	default:
		return usageError()
	}
}

func usageError() error {
	fmt.Fprint(os.Stderr, `usage:
  bprom train -out detector.bpd [-source cifar10] [-external stl10] [-scale small] [-shadows N] [-seed 42]
  bprom audit -detector detector.bpd -model suspicious.bin
  bprom audit -detector detector.bpd -url http://host:port
  bprom audit -url http://host:port -fleet
`)
	return fmt.Errorf("expected a 'train' or 'audit' subcommand")
}

// runTrain is the offline phase: train a detector once and persist it.
func runTrain(args []string) error {
	fs := flag.NewFlagSet("bprom train", flag.ExitOnError)
	var (
		out      = fs.String("out", "", "output detector artifact path (.bpd, required)")
		source   = fs.String("source", data.CIFAR10, "suspicious models' training domain")
		external = fs.String("external", data.STL10, "external clean dataset DT")
		scale    = fs.String("scale", "small", "detector scale: tiny | small | full")
		shadows  = fs.Int("shadows", 0, "override shadow count per class label (clean+backdoor)")
		seed     = fs.Uint64("seed", 42, "detector seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("train: -out is required")
	}
	p := exp.ParamsFor(exp.Scale(*scale))
	p.Seed = *seed
	if *shadows > 0 {
		p.ShadowClean, p.ShadowBackdoor = *shadows, *shadows
	}
	srcSpec, ok := data.SpecFor(*source)
	if !ok {
		return fmt.Errorf("unknown source dataset %q", *source)
	}
	extSpec, ok := data.SpecFor(*external)
	if !ok {
		return fmt.Errorf("unknown external dataset %q", *external)
	}
	det, err := trainDetector(context.Background(), p, *scale, srcSpec, extSpec)
	if err != nil {
		return err
	}
	if err := det.SaveFile(*out); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("detector artifact written: %s (%d bytes)\n", *out, st.Size())
	fmt.Printf("audit models with: bprom audit -detector %s -model <sus.bin>  (or serve it: mlaas-server -models zoo/ -detector %s)\n", *out, *out)
	return nil
}

// runAudit is the online phase: load a persisted detector (or use the
// server's, in fleet mode) and inspect suspicious models.
func runAudit(args []string) error {
	fs := flag.NewFlagSet("bprom audit", flag.ExitOnError)
	var (
		detPath   = fs.String("detector", "", "detector artifact (.bpd) from 'bprom train' (not used with -fleet)")
		modelPath = fs.String("model", "", "suspicious model checkpoint file")
		url       = fs.String("url", "", "suspicious MLaaS endpoint base URL")
		fleet     = fs.Bool("fleet", false, "submit server-side audit jobs for every model the endpoint hosts (requires -url)")
		key       = fs.String("key", "", "API key sent as Authorization: Bearer to the endpoint (required when the server runs with -keys)")
		timeout   = fs.Duration("timeout", 0, "per-request deadline against the endpoint (0: client default 30s); polling an audit job waits across many requests either way")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *fleet {
		if *url == "" {
			return fmt.Errorf("audit: -fleet requires -url")
		}
		if *detPath != "" {
			return fmt.Errorf("audit: -fleet audits with the SERVER's detector (mlaas-server -detector); drop -detector")
		}
		return auditFleet(ctx, *url, *key, *timeout)
	}
	if (*modelPath == "") == (*url == "") {
		return fmt.Errorf("audit: pass exactly one of -model or -url")
	}
	if *detPath == "" {
		return fmt.Errorf("audit: -detector is required (train one with 'bprom train -out detector.bpd')")
	}
	det, err := bprom.LoadFile(*detPath)
	if err != nil {
		return err
	}

	var sus oracle.Oracle
	var target string
	if *modelPath != "" {
		m, err := nn.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		sus = oracle.NewModelOracle(m)
		target = *modelPath
	} else {
		c, err := mlaas.Dial(ctx, *url, mlaas.ClientConfig{APIKey: *key, RequestTimeout: *timeout})
		if err != nil {
			return err
		}
		sus = c
		target = *url
	}
	if err := det.Compatible(sus.NumClasses(), sus.InputDim()); err != nil {
		return err
	}
	fmt.Printf("auditing %s with detector %s ...\n", target, *detPath)
	start := time.Now()
	v, err := det.Inspect(ctx, sus, 0)
	if err != nil {
		return err
	}
	verdict := "CLEAN"
	if v.Backdoored {
		verdict = "BACKDOORED"
	}
	fmt.Printf("verdict:           %s (in %s)\n", verdict, time.Since(start).Round(time.Millisecond))
	fmt.Printf("backdoor score:    %.3f (threshold %.3f)\n", v.Score, v.Threshold)
	fmt.Printf("prompted accuracy: %.3f (low accuracy = class-subspace inconsistency)\n", v.PromptedAcc)
	fmt.Printf("oracle queries:    %d samples\n", v.Queries)
	return nil
}

// trainDetector runs BPROM's Algorithm 1 once; the resulting detector is
// reusable across any number of suspicious models.
func trainDetector(ctx context.Context, p exp.Params, scale string, srcSpec, extSpec data.Spec) (*bprom.Detector, error) {
	r := rng.New(p.Seed)
	srcGen := data.NewGenerator(srcSpec, p.Seed^0x5151)
	_, srcTest := srcGen.GenerateSplit(1, p.SrcTest, r.Split("src"))
	tgtGen := data.NewGenerator(extSpec, p.Seed^0xA7A7)
	tgtTrain, tgtTest := tgtGen.GenerateSplit(p.TgtTrain, p.TgtTest, r.Split("tgt"))

	fmt.Printf("training detector (scale %s: %d+%d shadows) ...\n", scale, p.ShadowClean, p.ShadowBackdoor)
	start := time.Now()
	det, err := bprom.Train(ctx, bprom.Config{
		Reserved:      srcTest.Reserve(p.ReservedFrac, r.Split("reserve")),
		ExternalTrain: tgtTrain,
		ExternalTest:  tgtTest,
		NumClean:      p.ShadowClean,
		NumBackdoor:   p.ShadowBackdoor,
		ShadowArch:    nn.ArchConfig{Arch: nn.ArchConvLite, Hidden: p.Hidden},
		ShadowTrain:   trainer.Config{Epochs: p.Epochs},
		PromptFrac:    p.PromptFrac,
		WhiteBox:      vp.WhiteBoxConfig{Epochs: p.WBEpochs},
		BlackBox:      vp.BlackBoxConfig{Iterations: p.CMAIters},
		QuerySamples:  p.QuerySamples,
		Forest:        meta.TrainConfig{Trees: p.ForestTrees},
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("detector ready in %s\n", time.Since(start).Round(time.Millisecond))
	return det, nil
}

// fleetResult is one audited model's outcome.
type fleetResult struct {
	info    mlaas.ModelInfo
	job     audit.Job
	skipped string // non-empty: submission rejected (incompatible model)
	err     error
}

// auditFleet discovers every model on the endpoint and submits one
// server-side audit job per model — the train-once / audit-many workload:
// the server runs the inspections in-process on its bounded audit worker
// pool, and the CLI only polls job state and renders the verdict table.
func auditFleet(ctx context.Context, url, key string, timeout time.Duration) error {
	cfg := mlaas.ClientConfig{APIKey: key, RequestTimeout: timeout}
	h, err := mlaas.Healthz(ctx, url, cfg)
	if err != nil {
		return fmt.Errorf("endpoint health check: %w", err)
	}
	if !h.AuditsEnabled {
		return fmt.Errorf("endpoint does not run the audit service; start it with mlaas-server -detector <artifact.bpd>")
	}
	list, err := mlaas.ListModels(ctx, url, cfg)
	if err != nil {
		return err
	}
	if len(list.Models) == 0 {
		return fmt.Errorf("endpoint hosts no models")
	}
	fmt.Printf("endpoint hosts %d models; submitting server-side audit jobs ...\n", len(list.Models))

	results := make([]fleetResult, len(list.Models))
	var wg sync.WaitGroup
	start := time.Now()
	for i, mi := range list.Models {
		wg.Add(1)
		go func(i int, mi mlaas.ModelInfo) {
			defer wg.Done()
			results[i].info = mi
			c, err := mlaas.DialModel(ctx, url, mi.ID, cfg)
			if err != nil {
				results[i].err = err
				return
			}
			// Explicit inspect ids make fleet runs reproducible: model i is
			// always inspected on RNG stream i.
			job, err := c.AuditModel(ctx, i)
			if err != nil {
				// Only a detector-incompatibility rejection (400) is a
				// legitimate skip; queue pressure, server trouble, and
				// network failures must count as failed audits.
				var se *mlaas.StatusError
				if errors.As(err, &se) && se.Code == http.StatusBadRequest {
					results[i].skipped = se.Msg
				} else {
					results[i].err = err
				}
				return
			}
			final, err := c.WaitAudit(ctx, job.ID)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].job = final
		}(i, mi)
	}
	wg.Wait()

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	// The node column shows which gateway backend ran each job, the tenant
	// column which API-key tenant the server billed it to ("-" against a
	// single server or an un-tenanted endpoint). The migrated column names
	// the job a migrating gateway resumed this one from ("-" for jobs that
	// never moved). Queries is the oracle spend the tenant's ledger was
	// charged — reported even for FAILED jobs, where a quota-exhausted audit
	// still spent its partial budget.
	fmt.Fprintln(w, "model\tjob\tnode\tmigrated\ttenant\tverdict\tscore\tprompted-acc\tqueries")
	flagged, audited, failed := 0, 0, 0
	for _, res := range results {
		node, tenant, migrated := res.job.Node, res.job.Tenant, res.job.MigratedFrom
		if node == "" {
			node = "-"
		}
		if tenant == "" {
			tenant = "-"
		}
		if migrated == "" {
			migrated = "-"
		}
		switch {
		case res.err != nil:
			failed++
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\tERROR\t-\t-\t-\n", res.info.ID)
		case res.skipped != "":
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\tSKIPPED\t-\t-\t-\n", res.info.ID)
		case res.job.State != audit.StateDone || res.job.Verdict == nil:
			failed++
			verdict := "FAILED"
			if res.job.ErrorCode != "" {
				verdict = "FAILED:" + res.job.ErrorCode
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t-\t-\t%d\n",
				res.info.ID, res.job.ID, node, migrated, tenant, verdict, res.job.Progress.Queries)
		default:
			audited++
			v := res.job.Verdict
			verdict := "CLEAN"
			if v.Backdoored {
				verdict = "BACKDOORED"
				flagged++
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%.3f\t%.3f\t%d\n",
				res.info.ID, res.job.ID, node, migrated, tenant, verdict, v.Score, v.PromptedAcc, v.Queries)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nfleet audit done in %s: %d/%d flagged BACKDOORED (server-side jobs; detector never left the server)\n",
		time.Since(start).Round(time.Millisecond), flagged, audited)
	for _, res := range results {
		if res.skipped != "" {
			fmt.Printf("  %s skipped: %s\n", res.info.ID, res.skipped)
		}
		if res.err != nil {
			fmt.Printf("  %s failed: %v\n", res.info.ID, res.err)
		}
		if res.err == nil && res.skipped == "" && res.job.State == audit.StateFailed {
			fmt.Printf("  %s job %s failed: %s\n", res.info.ID, res.job.ID, res.job.Error)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d audits failed", failed, len(list.Models))
	}
	return nil
}
