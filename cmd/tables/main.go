// Command tables regenerates the paper's tables and figures.
//
// Usage:
//
//	tables -list
//	tables -table table5 -scale small
//	tables -all -scale tiny -csv out/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bprom/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table  = flag.String("table", "", "experiment ID to run (see -list)")
		scale  = flag.String("scale", "tiny", "experiment scale: tiny | small | full")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment IDs")
		csvDir = flag.String("csv", "", "directory to also write CSV outputs into")
		seed   = flag.Uint64("seed", 1, "root seed")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	p := exp.ParamsFor(exp.Scale(*scale))
	p.Seed = *seed

	var ids []string
	switch {
	case *all:
		ids = exp.IDs()
	case *table != "":
		ids = []string{*table}
	default:
		return fmt.Errorf("pass -table <id>, -all, or -list")
	}
	ctx := context.Background()
	for _, id := range ids {
		start := time.Now()
		t, err := exp.Run(ctx, id, p)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(t.Render())
		fmt.Printf("(%s in %s at scale %s)\n\n", id, time.Since(start).Round(time.Millisecond), *scale)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
	}
	return nil
}
