// Command mlaas-server serves a model file as an MLaaS prediction endpoint
// (the black-box boundary of the paper's threat model). Without -model it
// trains a demo model — optionally backdoored — on the synthetic CIFAR-10
// analogue first.
//
// Usage:
//
//	mlaas-server -addr :8080 -model model.bin
//	mlaas-server -addr :8080 -demo badnets    # train a backdoored demo model
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlaas-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		modelPath     = flag.String("model", "", "model file to serve (nn binary format)")
		demo          = flag.String("demo", "", "train a demo model instead: 'clean' or an attack name (badnets, blend, ...)")
		seed          = flag.Uint64("seed", 1, "demo training seed")
		maxBatch      = flag.Int("max-batch", 0, "samples per request and micro-batch coalescing target (0: default 512)")
		maxConcurrent = flag.Int("max-concurrent", 0, "parallel forward passes / micro-batch workers (0: default 4)")
		tensorWorkers = flag.Int("tensor-workers", 0, "shared tensor kernel pool size (0: BPROM_TENSOR_WORKERS or GOMAXPROCS)")
	)
	flag.Parse()
	// Size the kernel pool before any training or serving touches it. The
	// pool is shared by demo training and all micro-batch workers alike.
	tensor.SetWorkers(*tensorWorkers)

	var model *nn.Model
	switch {
	case *modelPath != "":
		m, err := nn.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		model = m
	case *demo != "":
		m, err := trainDemo(*demo, *seed)
		if err != nil {
			return err
		}
		model = m
	default:
		return fmt.Errorf("pass -model <path> or -demo clean|badnets|...")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := mlaas.NewServer(model, mlaas.ServerConfig{
		Name:          "bprom-demo",
		MaxBatch:      *maxBatch,
		MaxConcurrent: *maxConcurrent,
	})
	ready := make(chan string, 1)
	go func() {
		fmt.Printf("serving on http://%s (classes=%d dim=%d); Ctrl-C to stop\n",
			<-ready, model.NumClasses, model.InputDim)
	}()
	return srv.Serve(ctx, *addr, ready)
}

func trainDemo(kind string, seed uint64) (*nn.Model, error) {
	gen := data.NewGenerator(data.MustSpec(data.CIFAR10), seed)
	train := gen.Generate(50, rng.New(seed))
	if kind != "clean" {
		cfg := attack.Config{Kind: attack.Kind(kind), PoisonRate: 0.15, Seed: seed}
		poisoned, _, err := attack.Poison(train, cfg, rng.New(seed+1))
		if err != nil {
			return nil, err
		}
		train = poisoned
		fmt.Printf("trained demo model carries a %s backdoor (target class 0)\n", kind)
	}
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: train.Shape.C, H: train.Shape.H, W: train.Shape.W,
		NumClasses: train.Classes, Hidden: 24,
	}, rng.New(seed+2))
	if err != nil {
		return nil, err
	}
	if _, err := trainer.Train(context.Background(), m, train, trainer.Config{Epochs: 14}, rng.New(seed+3)); err != nil {
		return nil, err
	}
	return m, nil
}
