// Command mlaas-server serves models as an MLaaS prediction endpoint (the
// black-box boundary of the paper's threat model). It runs in one of three
// modes: serve a single model file, serve a whole checkpoint directory as a
// multi-model registry with a bounded LRU hot-set, or train a demo model —
// optionally backdoored — on the synthetic CIFAR-10 analogue first.
//
// Given a detector artifact (-detector, from `bprom train -out`), the
// server additionally runs audit-as-a-service: asynchronous server-side
// BPROM audit jobs against its own hosted models on the /v1/audits routes —
// the paper's train-once / audit-many deployment.
//
// Usage:
//
//	mlaas-server -addr :8080 -model model.bin
//	mlaas-server -addr :8080 -models zoo/ -max-loaded 4    # serve a zoo
//	mlaas-server -addr :8080 -models zoo/ -quantize        # int8 serving
//	mlaas-server -addr :8080 -models zoo/ -detector detector.bpd   # + audits
//	mlaas-server -addr :8080 -demo badnets    # train a backdoored demo model
//
// -quantize switches serving to the reduced-precision int8 inference path:
// weights are quantized as each checkpoint loads (never on disk), shrinking
// hot-set residency ~4x and roughly doubling matmul-bound predict
// throughput at a small, bounded confidence error. A checkpoint sidecar's
// "precision" field pins individual models to "fp64" (bit-exact) or "int8"
// regardless of the flag.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight predict
// requests drain through http.Server.Shutdown, and running audit jobs are
// cancelled via their contexts before the model engines stop. /v1/healthz
// reports liveness and whether audits are enabled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"bprom/internal/attack"
	"bprom/internal/bprom"
	"bprom/internal/data"
	"bprom/internal/jobstore"
	"bprom/internal/mlaas"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/tensor"
	"bprom/internal/trainer"
	"bprom/internal/vp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlaas-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		modelPath     = flag.String("model", "", "single model file to serve (nn binary format)")
		modelsDir     = flag.String("models", "", "checkpoint directory to serve as a multi-model registry")
		defaultModel  = flag.String("default", "", "registry model id served by the legacy /v1/info and /v1/predict routes (default: 'clean' if present, else first id)")
		maxLoaded     = flag.Int("max-loaded", 0, "registry LRU hot-set size: models resident at once (0: default 4)")
		quantize      = flag.Bool("quantize", false, "serve int8-quantized models: quantize weights at load (~4x smaller resident, ~2x faster matmul-bound predict); sidecar \"precision\" overrides per model")
		demo          = flag.String("demo", "", "train a demo model instead: 'clean' or an attack name (badnets, blend, ...)")
		seed          = flag.Uint64("seed", 1, "demo training seed")
		maxBatch      = flag.Int("max-batch", 0, "samples per request and micro-batch coalescing target (0: default 512)")
		maxConcurrent = flag.Int("max-concurrent", 0, "parallel forward passes / micro-batch workers per model (0: default 4)")
		tensorWorkers = flag.Int("tensor-workers", 0, "shared tensor kernel pool size (0: BPROM_TENSOR_WORKERS or GOMAXPROCS)")
		detectorPath  = flag.String("detector", "", "detector artifact (.bpd, from 'bprom train') enabling server-side audit jobs on /v1/audits")
		auditWorkers  = flag.Int("audit-workers", 0, "concurrently running audit jobs (0: default 2)")
		auditQueue    = flag.Int("audit-queue", 0, "queued audit jobs before submissions get 429 (0: default 64)")
		jobsDir       = flag.String("jobs-dir", "", "durable audit-job directory: jobs journal here and resume bit-exactly after a restart (requires -detector)")
		keysPath      = flag.String("keys", "", "API-key file (tenant:key[:quota[:rps]] per line) enabling auth, per-tenant rate limits, and oracle-query quotas")
		reauditEvery  = flag.Duration("reaudit-every", 0, "re-audit every hosted model on this cadence (e.g. 12h; requires -detector; jobs attributed to tenant \"reaudit\")")
		screenPath    = flag.String("screen", "", "detector artifact (.bpd) enabling inline request screening: every predict row is scored with the learned prompt, fused into the same forward pass")
		screenThresh  = flag.Float64("screen-threshold", 0, "screening flag threshold in (0,1] (0: default)")
		screenPolicy  = flag.String("screen-policy", "annotate", "what to do with flagged inputs: 'annotate' (attach scores, serve anyway) or 'reject' (withhold their confidences)")
	)
	flag.Parse()
	// Size the kernel pool before any training or serving touches it. The
	// pool is shared by demo training and all micro-batch workers alike.
	tensor.SetWorkers(*tensorWorkers)

	modes := 0
	for _, set := range []bool{*modelPath != "", *modelsDir != "", *demo != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("pass exactly one of -model <path>, -models <dir>, or -demo clean|badnets|...")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Inline request screening: derive the serving-time screener from a
	// trained detector artifact's shadow prompts.
	var screener *vp.Screener
	if *screenPath != "" {
		if *screenPolicy != mlaas.ScreenAnnotate && *screenPolicy != mlaas.ScreenReject {
			return fmt.Errorf("-screen-policy %q: want %q or %q", *screenPolicy, mlaas.ScreenAnnotate, mlaas.ScreenReject)
		}
		det, err := bprom.LoadFile(*screenPath)
		if err != nil {
			return err
		}
		if screener, err = det.Screener(*screenThresh); err != nil {
			return err
		}
	}

	var srv *mlaas.Server
	var announce func(addr string)
	if *modelsDir != "" {
		reg, err := mlaas.OpenRegistry(*modelsDir, mlaas.RegistryConfig{
			MaxLoaded:     *maxLoaded,
			MaxBatch:      *maxBatch,
			MaxConcurrent: *maxConcurrent,
			Default:       *defaultModel,
			Quantize:      *quantize,
			Screener:      screener,
			ScreenPolicy:  *screenPolicy,
		})
		if err != nil {
			return err
		}
		srv = mlaas.NewRegistryServer(reg)
		announce = func(addr string) {
			fmt.Printf("serving %d models from %s on http://%s (default %q, hot-set %d); Ctrl-C to stop\n",
				reg.Len(), *modelsDir, addr, reg.DefaultID(), reg.MaxLoaded())
			for _, mi := range reg.Models() {
				fmt.Printf("  /v1/models/%s  (%s, classes=%d dim=%d, %s)\n", mi.ID, mi.Arch, mi.Classes, mi.InputDim, mi.Precision)
			}
		}
	} else {
		var model *nn.Model
		switch {
		case *modelPath != "":
			m, err := nn.LoadFile(*modelPath)
			if err != nil {
				return err
			}
			model = m
		default:
			m, err := trainDemo(*demo, *seed)
			if err != nil {
				return err
			}
			model = m
		}
		if *quantize {
			model.Quantize(0)
		}
		if screener != nil && screener.InputDim() != model.InputDim {
			return fmt.Errorf("-screen: screener canvas %d does not match model input %d", screener.InputDim(), model.InputDim)
		}
		srv = mlaas.NewServer(model, mlaas.ServerConfig{
			Name:          "bprom-demo",
			MaxBatch:      *maxBatch,
			MaxConcurrent: *maxConcurrent,
			Screener:      screener,
			ScreenPolicy:  *screenPolicy,
		})
		announce = func(addr string) {
			fmt.Printf("serving on http://%s (classes=%d dim=%d); Ctrl-C to stop\n",
				addr, model.NumClasses, model.InputDim)
		}
	}

	if *detectorPath == "" {
		if *jobsDir != "" {
			return fmt.Errorf("-jobs-dir requires -detector (durable jobs need the audit service)")
		}
		if *reauditEvery > 0 {
			return fmt.Errorf("-reaudit-every requires -detector (re-audits need the audit service)")
		}
	}

	// The job store outlives the server: it is replayed before the audit
	// manager starts and closed only after Serve returns, so the shutdown
	// checkpoint flush always lands in the journal.
	var store *jobstore.Store
	if *jobsDir != "" {
		s, err := jobstore.Open(*jobsDir)
		if err != nil {
			return err
		}
		defer s.Close()
		store = s
	}

	// Tenancy before audits: EnableAudits quota-wraps resumed jobs' oracles
	// through the tenancy, so the key file (with its journal-seeded spend
	// ledgers) must be live before the journal replays.
	var notes []string
	if *keysPath != "" {
		tenants, err := jobstore.ParseKeyFile(*keysPath)
		if err != nil {
			return err
		}
		var seed map[string]int64
		if store != nil {
			seed = store.TenantSpend()
		}
		srv.EnableTenancy(jobstore.NewTenancy(tenants, seed))
		notes = append(notes, fmt.Sprintf("tenancy live: %d tenants from %s (mutating routes require Authorization: Bearer <key>)", len(tenants), *keysPath))
	}

	auditNote := "audits disabled (pass -detector to enable /v1/audits)"
	if *detectorPath != "" {
		det, err := bprom.LoadFile(*detectorPath)
		if err != nil {
			return err
		}
		if err := srv.EnableAudits(det, mlaas.AuditConfig{Workers: *auditWorkers, MaxQueued: *auditQueue, Store: store}); err != nil {
			return err
		}
		auditNote = fmt.Sprintf("audit-as-a-service live on /v1/audits (detector %s)", *detectorPath)
		if store != nil {
			auditNote += fmt.Sprintf("; durable jobs in %s (%d resumed)", *jobsDir, srv.Audits().Resumed())
		}
		if *reauditEvery > 0 {
			if err := srv.EnableReaudit(*reauditEvery, "reaudit"); err != nil {
				return err
			}
			notes = append(notes, fmt.Sprintf("re-audit scheduler live: full zoo sweep every %s", *reauditEvery))
		}
	}

	ready := make(chan string, 1)
	go func() {
		announce(<-ready)
		if screener != nil {
			fmt.Printf("inline screening live (policy %s, threshold %.3f, detector %s)\n",
				*screenPolicy, screener.Threshold(), *screenPath)
		}
		fmt.Println(auditNote)
		for _, n := range notes {
			fmt.Println(n)
		}
	}()
	return srv.Serve(ctx, *addr, ready)
}

func trainDemo(kind string, seed uint64) (*nn.Model, error) {
	gen := data.NewGenerator(data.MustSpec(data.CIFAR10), seed)
	train := gen.Generate(50, rng.New(seed))
	if kind != "clean" {
		cfg := attack.Config{Kind: attack.Kind(kind), PoisonRate: 0.15, Seed: seed}
		poisoned, _, err := attack.Poison(train, cfg, rng.New(seed+1))
		if err != nil {
			return nil, err
		}
		train = poisoned
		fmt.Printf("trained demo model carries a %s backdoor (target class 0)\n", kind)
	}
	m, err := nn.Build(nn.ArchConfig{
		Arch: nn.ArchConvLite, C: train.Shape.C, H: train.Shape.H, W: train.Shape.W,
		NumClasses: train.Classes, Hidden: 24,
	}, rng.New(seed+2))
	if err != nil {
		return nil, err
	}
	if _, err := trainer.Train(context.Background(), m, train, trainer.Config{Epochs: 14}, rng.New(seed+3)); err != nil {
		return nil, err
	}
	return m, nil
}
