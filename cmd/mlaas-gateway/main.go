// Command mlaas-gateway fronts a fleet of mlaas-server nodes as one
// endpoint speaking the exact single-node wire API: model listings,
// predicts (with inline-screening fields), async audit jobs, and healthz
// all route through it unchanged, so clients and `bprom -fleet` point at
// the gateway instead of a node and nothing else moves.
//
// Models are placed on nodes by rendezvous hashing with optional
// replication (-replication N serves every model from its top N hosting
// nodes: predicts rotate across replicas and fail over within a request).
// Membership is health-checked: periodic /v1/healthz probes with
// mark-down/mark-up hysteresis (-down-after / -up-after) take flapping
// nodes out of rotation, and failed proxied requests count against the
// same streaks. A saturated node's 429 + Retry-After passes through after
// the replicas are tried; a model whose hosts are all down yields a
// structured 503 instead of a hang.
//
// Usage:
//
//	mlaas-gateway -addr :8100 -nodes http://10.0.0.7:8080,http://10.0.0.8:8080
//	mlaas-gateway -addr :8100 -nodes ...,... -replication 2 -health-interval 1s
//
// Audit jobs routed through the gateway get namespaced ids ("n0.a3": node
// n0's job a3), pollable and cancellable on the usual /v1/audits routes.
// With -migrate the gateway additionally supervises every audit it places:
// it caches each job's newest checkpoint while the owner is healthy and,
// when the owner stays marked down past -migrate-grace, re-submits the job
// to the next healthy replica with the checkpoint attached — the old job id
// keeps answering polls, forwarded to wherever the job lives now.
// The gateway shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"bprom/internal/jobstore"
	"bprom/internal/mlaas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlaas-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr           = flag.String("addr", "127.0.0.1:8100", "listen address")
		nodes          = flag.String("nodes", "", "comma-separated mlaas-server base URLs (required); order fixes the node names n0, n1, ...")
		replication    = flag.Int("replication", 0, "nodes serving each model, bounded by how many host it (0: default 1)")
		healthInterval = flag.Duration("health-interval", 0, "membership probe period (0: default 2s)")
		downAfter      = flag.Int("down-after", 0, "consecutive failures before a node is marked down (0: default 2)")
		upAfter        = flag.Int("up-after", 0, "consecutive successful probes before a marked-down node returns (0: default 2)")
		timeout        = flag.Duration("timeout", 0, "per-request timeout against nodes (0: default 30s)")
		probeTimeout   = flag.Duration("probe-timeout", 0, "deadline for one node's whole health probe (0: default 5s)")
		keysPath       = flag.String("keys", "", "API-key file (tenant:key[:quota[:rps[:flags]]] per line) enforcing auth and rate limits at the gateway edge; callers' keys are forwarded to nodes either way")
		migrate        = flag.Bool("migrate", false, "supervise audit jobs and re-home them (newest checkpoint attached) when their node stays down past the grace window")
		migrateGrace   = flag.Duration("migrate-grace", 0, "how long a node must stay marked down before its audit jobs migrate (0: default 10s)")
		migrateEvery   = flag.Duration("migrate-interval", 0, "migration supervisor sweep period (0: default = health-interval)")
		migrateKey     = flag.String("migrate-key", "", "service-flagged API key the supervisor presents when resubmitting migrated jobs; required against tenant-enabled nodes, since only a service credential may resume on another tenant's behalf")
	)
	flag.Parse()
	if *nodes == "" {
		return fmt.Errorf("pass -nodes with at least one mlaas-server base URL")
	}
	var nodeURLs []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodeURLs = append(nodeURLs, u)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	gw, err := mlaas.NewGateway(ctx, mlaas.GatewayConfig{
		Nodes:          nodeURLs,
		Replication:    *replication,
		HealthInterval: *healthInterval,
		MarkDownAfter:  *downAfter,
		MarkUpAfter:    *upAfter,
		ProbeTimeout:   *probeTimeout,
		Client:         mlaas.ClientConfig{Timeout: *timeout},
		Migration: mlaas.MigrationConfig{
			Enabled:  *migrate,
			Grace:    *migrateGrace,
			Interval: *migrateEvery,
			APIKey:   *migrateKey,
		},
	})
	if err != nil {
		return err
	}
	srv := mlaas.NewGatewayServer(gw)
	tenancyNote := ""
	if *keysPath != "" {
		tenants, err := jobstore.ParseKeyFile(*keysPath)
		if err != nil {
			return err
		}
		// Edge auth only: the gateway rejects bad keys and rate-limits
		// before the routing hop, while quota ledgers stay on the nodes
		// (their journals are the ledgers of record — /v1/tenants/{id}/usage
		// fans out and sums them).
		srv.EnableTenancy(jobstore.NewTenancy(tenants, nil))
		tenancyNote = fmt.Sprintf("edge tenancy live: %d tenants from %s\n", len(tenants), *keysPath)
	}

	ready := make(chan string, 1)
	go func() {
		bound := <-ready
		fmt.Printf("gateway on http://%s over %d node(s), %d healthy; Ctrl-C to stop\n",
			bound, gw.Nodes(), gw.HealthyNodes())
		fmt.Print(tenancyNote)
		for i, u := range nodeURLs {
			fmt.Printf("  n%d  %s\n", i, u)
		}
	}()
	// Serve owns shutdown: ctx cancellation drains HTTP and closes the
	// server, whose provider Close stops the gateway's membership loop.
	return srv.Serve(ctx, *addr, ready)
}
