// Command attackzoo trains one model per implemented backdoor attack and
// reports clean accuracy and attack success rate — the substrate validation
// behind the paper's Tables 13–15.
//
// Usage:
//
//	attackzoo -dataset cifar10 -epochs 15
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackzoo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset  = flag.String("dataset", data.CIFAR10, "dataset preset")
		perClass = flag.Int("per-class", 50, "training samples per class")
		epochs   = flag.Int("epochs", 15, "training epochs")
		seed     = flag.Uint64("seed", 1, "root seed")
	)
	flag.Parse()
	spec, ok := data.SpecFor(*dataset)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	ctx := context.Background()
	gen := data.NewGenerator(spec, *seed)
	train, test := gen.GenerateSplit(*perClass, *perClass/2+1, rng.New(*seed))

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "attack\tpoison%\tcover%\tACC\tASR")
	cfgs := attack.DefaultConfigs(*dataset)
	for _, kind := range attack.AllKinds() {
		cfg := cfgs[kind]
		cfg.Seed = *seed
		poisoned, _, err := attack.Poison(train, cfg, rng.New(*seed+7))
		if err != nil {
			return fmt.Errorf("%s: %w", kind, err)
		}
		m, err := nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: spec.Shape.C, H: spec.Shape.H, W: spec.Shape.W,
			NumClasses: spec.Classes, Hidden: 24,
		}, rng.New(*seed+13))
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, m, poisoned, trainer.Config{Epochs: *epochs}, rng.New(*seed+17)); err != nil {
			return err
		}
		acc := trainer.Evaluate(m, test, 0)
		asr, err := attack.ASR(m, test, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.3f\t%.3f\n", kind, cfg.PoisonRate*100, cfg.CoverRate*100, acc, asr)
	}
	return w.Flush()
}
