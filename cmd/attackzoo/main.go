// Command attackzoo trains one model per implemented backdoor attack and
// reports clean accuracy and attack success rate — the substrate validation
// behind the paper's Tables 13–15. With -export it also materializes the
// zoo as a checkpoint directory (one clean baseline plus one backdoored
// model per attack, each with a JSON metadata sidecar) ready to serve with
// `mlaas-server -models` and audit with `bprom -url ... -fleet`.
//
// Usage:
//
//	attackzoo -dataset cifar10 -epochs 15
//	attackzoo -epochs 15 -export zoo/   # write clean.bin, badnets.bin, ...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"bprom/internal/attack"
	"bprom/internal/data"
	"bprom/internal/nn"
	"bprom/internal/rng"
	"bprom/internal/trainer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackzoo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset  = flag.String("dataset", data.CIFAR10, "dataset preset")
		perClass = flag.Int("per-class", 50, "training samples per class")
		epochs   = flag.Int("epochs", 15, "training epochs")
		seed     = flag.Uint64("seed", 1, "root seed")
		export   = flag.String("export", "", "checkpoint directory to materialize the zoo into (empty: train only)")
	)
	flag.Parse()
	spec, ok := data.SpecFor(*dataset)
	if !ok {
		return fmt.Errorf("unknown dataset %q", *dataset)
	}
	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			return fmt.Errorf("create export dir: %w", err)
		}
	}
	ctx := context.Background()
	gen := data.NewGenerator(spec, *seed)
	train, test := gen.GenerateSplit(*perClass, *perClass/2+1, rng.New(*seed))

	build := func() (*nn.Model, error) {
		return nn.Build(nn.ArchConfig{
			Arch: nn.ArchConvLite, C: spec.Shape.C, H: spec.Shape.H, W: spec.Shape.W,
			NumClasses: spec.Classes, Hidden: 24,
		}, rng.New(*seed+13))
	}
	save := func(m *nn.Model, id, note string, metrics map[string]float64) error {
		if *export == "" {
			return nil
		}
		path := filepath.Join(*export, id+".bin")
		if err := m.SaveFile(path); err != nil {
			return err
		}
		sc := nn.SidecarFor(m, *dataset+"/"+id, note)
		sc.Metrics = metrics
		return sc.WriteFile(path)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "attack\tpoison%\tcover%\tACC\tASR")

	// Clean baseline: the zoo's negative control, and the -export default
	// model (the registry prefers a checkpoint named "clean").
	if *export != "" {
		m, err := build()
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, m, train, trainer.Config{Epochs: *epochs}, rng.New(*seed+17)); err != nil {
			return err
		}
		acc := trainer.Evaluate(m, test, 0)
		if err := save(m, "clean", "clean baseline (no poisoning)", map[string]float64{"acc": acc}); err != nil {
			return err
		}
		fmt.Fprintf(w, "clean\t-\t-\t%.3f\t-\n", acc)
	}

	cfgs := attack.DefaultConfigs(*dataset)
	for _, kind := range attack.AllKinds() {
		cfg := cfgs[kind]
		cfg.Seed = *seed
		poisoned, _, err := attack.Poison(train, cfg, rng.New(*seed+7))
		if err != nil {
			return fmt.Errorf("%s: %w", kind, err)
		}
		m, err := build()
		if err != nil {
			return err
		}
		if _, err := trainer.Train(ctx, m, poisoned, trainer.Config{Epochs: *epochs}, rng.New(*seed+17)); err != nil {
			return err
		}
		acc := trainer.Evaluate(m, test, 0)
		asr, err := attack.ASR(m, test, cfg)
		if err != nil {
			return err
		}
		note := fmt.Sprintf("backdoored: %s attack, target class %d, poison rate %.2f", kind, cfg.Target, cfg.PoisonRate)
		if err := save(m, string(kind), note, map[string]float64{"acc": acc, "asr": asr}); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.3f\t%.3f\n", kind, cfg.PoisonRate*100, cfg.CoverRate*100, acc, asr)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *export != "" {
		fmt.Printf("\nzoo exported to %s (%d checkpoints + sidecars)\n", *export, len(attack.AllKinds())+1)
		fmt.Printf("serve it:  mlaas-server -models %s\n", *export)
		fmt.Printf("audit it:  bprom -url http://127.0.0.1:8080 -fleet\n")
	}
	return nil
}
